"""The correlated-randomness factory: producer service + streaming client.

Three layers, composable from in-process tests up to a standalone
producer process:

- :class:`RandomnessFactory` — the service core: a disk-backed
  :class:`~repro.offline.inventory.InventoryStore`, an announced-seed
  production queue, and the fetch path (inventory hit or cold
  vectorized generation);
- :class:`FactoryServer` — serves the factory over TCP using the typed
  control frames of :mod:`repro.offline.provisioning`; one session thread
  per connected party server;
- :class:`FactoryClient` — the party-server side: fetch a
  party-restricted :class:`~repro.crypto.dealer.RandomnessPool` at an
  exact job seed, announce upcoming seeds, read stats.

Because generation is deterministic per (manifest, seed) substream, a
fetch served from the spool, a cold generation on the factory, and a
local fallback generation on the party server all yield bit-identical
share arrays — the runtime can fail over freely without breaking the
zoo-wide logit identity.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.dealer import RandomnessPool
from repro.crypto.ring import FixedPointRing
from repro.crypto.transport import TcpListener, TcpTransport, Transport
from repro.offline.generation import GROUP_FIELDS, PARTY_FIELDS
from repro.offline.inventory import InventoryStore, PoolBundle
from repro.offline.provisioning import (
    AnnounceRequest,
    ProvisionChunk,
    ProvisionDone,
    ProvisionRequest,
    WireGroups,
    decode_frame,
    encode_frame,
)


class RandomnessFactory:
    """Service core: announced-seed producer + inventory-backed fetch."""

    def __init__(self, store: InventoryStore, *, keep_consumed: bool = False) -> None:
        self.store = store
        self.keep_consumed = keep_consumed
        self._lock = threading.Lock()
        self._specs: Dict[str, Tuple[FixedPointRing, WireGroups]] = {}
        self._pending: Dict[str, List[int]] = {}
        self._fetched_parties: Dict[Tuple[str, int], set] = {}
        self.inventory_fetches = 0
        self.cold_fetches = 0

    # -- production ----------------------------------------------------------- #
    def announce(
        self, manifest_hash: str, ring: FixedPointRing, groups: WireGroups, seeds: List[int]
    ) -> int:
        """Queue upcoming (manifest, seed) pairs for pre-generation.

        Returns how many seeds were newly queued (already-spooled or
        already-pending seeds are skipped).
        """
        queued = 0
        with self._lock:
            self._specs[manifest_hash] = (ring, list(groups))
            pending = self._pending.setdefault(manifest_hash, [])
            for seed in seeds:
                seed = int(seed)
                if seed in pending or self.store.contains(manifest_hash, seed):
                    continue
                pending.append(seed)
                queued += 1
        return queued

    @property
    def pending_count(self) -> int:
        with self._lock:
            return sum(len(seeds) for seeds in self._pending.values())

    def _next_pending(self) -> Optional[Tuple[str, int]]:
        with self._lock:
            for manifest_hash, seeds in self._pending.items():
                if seeds:
                    return manifest_hash, seeds.pop(0)
        return None

    def produce_one(self) -> Optional[str]:
        """Generate and spool one announced bundle; returns its path."""
        item = self._next_pending()
        if item is None:
            return None
        manifest_hash, seed = item
        with self._lock:
            spec = self._specs.get(manifest_hash)
        if spec is None:
            return None
        ring, groups = spec
        started = time.monotonic()
        bundle = PoolBundle.from_groups(ring, manifest_hash, groups, seed)
        return self.store.put(bundle, generation_seconds=time.monotonic() - started)

    def produce_pending(self, max_bundles: Optional[int] = None) -> int:
        """Drain the announced queue (up to ``max_bundles``); returns count."""
        produced = 0
        while max_bundles is None or produced < max_bundles:
            if self.produce_one() is None:
                break
            produced += 1
        return produced

    # -- consumption ---------------------------------------------------------- #
    def fetch_bundle(
        self, request: ProvisionRequest
    ) -> Tuple[PoolBundle, str]:
        """The bundle of one request: inventory hit or cold generation."""
        bundle = self.store.load(request.manifest_hash, request.seed)
        if bundle is not None:
            self._mark_fetched(request)
            with self._lock:
                self.inventory_fetches += 1
            return bundle, "inventory"
        started = time.monotonic()
        bundle = PoolBundle.from_groups(
            request.ring, request.manifest_hash, request.groups, request.seed
        )
        with self._lock:
            self.cold_fetches += 1
            self._specs.setdefault(request.manifest_hash, (request.ring, list(request.groups)))
        # A cold fetch still teaches the store its production cost, so the
        # refill-lead-time accounting works for purely reactive factories.
        self.store._lock.acquire()
        try:
            previous = self.store._generation_ewma.get(request.manifest_hash)
            cost = time.monotonic() - started
            self.store._generation_ewma[request.manifest_hash] = (
                cost if previous is None else 0.8 * previous + 0.2 * cost
            )
        finally:
            self.store._lock.release()
        return bundle, "cold"

    def _mark_fetched(self, request: ProvisionRequest) -> None:
        """Drop a spooled bundle once every consumer has pulled it.

        A party-restricted fetch marks its party; the bundle is removed
        after both parties fetched.  An unrestricted (simulation) fetch
        consumes it immediately.
        """
        if self.keep_consumed:
            return
        key = (request.manifest_hash, int(request.seed))
        with self._lock:
            if request.party is None:
                done = True
            else:
                fetched = self._fetched_parties.setdefault(key, set())
                fetched.add(int(request.party))
                done = fetched == {0, 1}
            if done:
                self._fetched_parties.pop(key, None)
        if done:
            self.store.remove(*key)

    # -- stats ---------------------------------------------------------------- #
    def stats_snapshot(self) -> Dict[str, object]:
        """JSON stats: the store snapshot plus factory-level counters."""
        snapshot = self.store.stats_snapshot()
        with self._lock:
            snapshot["schema"] = "offline-factory/v1"
            snapshot["registered_manifests"] = sorted(self._specs)
            snapshot["pending"] = sum(len(seeds) for seeds in self._pending.values())
            snapshot["inventory_fetches"] = self.inventory_fetches
            snapshot["cold_fetches"] = self.cold_fetches
        return snapshot


class FactoryServer:
    """Serves a :class:`RandomnessFactory` over framed TCP control messages.

    Runs an accept loop plus one session thread per connection and,
    optionally, a background producer thread draining announced seeds.
    """

    def __init__(
        self,
        factory: RandomnessFactory,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        produce: bool = True,
        produce_idle_sleep: float = 0.02,
    ) -> None:
        self.factory = factory
        self._listener = TcpListener(host=host, port=port, backlog=16)
        self.host = self._listener.host
        self.port = self._listener.port
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._producer_thread: Optional[threading.Thread] = None
        self._produce = produce
        self._produce_idle_sleep = produce_idle_sleep

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "FactoryServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="factory-accept", daemon=True
        )
        self._accept_thread.start()
        if self._produce:
            self._producer_thread = threading.Thread(
                target=self._producer_loop, name="factory-producer", daemon=True
            )
            self._producer_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                transport = self._listener.accept(timeout=0.2)
            except (TimeoutError, OSError):
                continue
            # The short timeout above only bounds accept() so the loop can
            # notice close(); sessions themselves block indefinitely.
            transport._sock.settimeout(None)
            thread = threading.Thread(
                target=self._serve_session,
                args=(transport,),
                name="factory-session",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _producer_loop(self) -> None:
        while not self._stop.is_set():
            if self.factory.produce_one() is None:
                self._stop.wait(self._produce_idle_sleep)

    def _serve_session(self, transport: Transport) -> None:
        try:
            while not self._stop.is_set():
                frame = transport.recv_control()
                if frame is None:
                    break
                try:
                    header, payload = decode_frame(frame)
                    self._handle(transport, header, payload)
                except Exception as error:  # reply, don't kill the session
                    transport.send_control(
                        encode_frame({"type": "error", "message": str(error)})
                    )
        except (ConnectionError, TimeoutError, OSError, ValueError):
            pass
        finally:
            transport.close()

    def _handle(
        self, transport: Transport, header: Dict[str, object], payload: bytes
    ) -> None:
        frame_type = header["type"]
        if frame_type == "provision-request":
            request = ProvisionRequest.from_header(header)
            bundle, source = self.factory.fetch_bundle(request)
            sent_bytes = 0
            for group in bundle.groups:
                if request.party is None:
                    fields = GROUP_FIELDS[group.kind]
                else:
                    fields = PARTY_FIELDS[group.kind][request.party]
                chunk = ProvisionChunk(
                    kind=group.kind,
                    shape=group.shape,
                    count=group.count,
                    arrays={name: group.arrays[name] for name in fields},
                )
                chunk_header, chunk_payload = chunk.header_and_payload()
                sent_bytes += len(chunk_payload)
                transport.send_control(encode_frame(chunk_header, chunk_payload))
            done = ProvisionDone(
                manifest_hash=request.manifest_hash,
                seed=request.seed,
                groups=len(bundle.groups),
                material_bytes=sent_bytes,
                source=source,
                inventory_depth=self.factory.store.depth(request.manifest_hash),
            )
            transport.send_control(encode_frame(done.header()))
        elif frame_type == "announce":
            announce = AnnounceRequest.from_header(header)
            queued = self.factory.announce(
                announce.manifest_hash, announce.ring, announce.groups, announce.seeds
            )
            transport.send_control(
                encode_frame({"type": "announce-ack", "queued": queued})
            )
        elif frame_type == "stats":
            transport.send_control(
                encode_frame({"type": "stats-ack", "stats": self.factory.stats_snapshot()})
            )
        else:
            raise ValueError(f"unknown provisioning frame type {frame_type!r}")

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._producer_thread is not None:
            self._producer_thread.join(timeout=2.0)

    def __enter__(self) -> "FactoryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class FactoryClient:
    """Party-server side of the provisioning protocol (thread-safe)."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        timeout: float = 30.0,
        retries: int = 10,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self._transport = TcpTransport.connect(
            host=self.address[0],
            port=self.address[1],
            timeout=timeout,
            retries=retries,
        )
        self._lock = threading.RLock()
        self.last_inventory_depth: Optional[int] = None
        self.last_source: Optional[str] = None

    @staticmethod
    def manifest_wire_form(manifest) -> Tuple[str, FixedPointRing, WireGroups]:
        """(hash, ring, grouped requests) of a preprocessing manifest."""
        return manifest.content_hash, manifest.ring, manifest.grouped_requests()

    def fetch_pool(
        self,
        manifest,
        seed: int,
        party: Optional[int] = None,
    ) -> RandomnessPool:
        """Fetch the pool of ``(manifest, seed)``, restricted to ``party``.

        Bit-identical to ``TrustedDealer(ring, seed).preprocess(manifest)
        .restrict_to_party(party)`` — the streamed arrays come from the
        same per-group substreams.
        """
        manifest_hash, ring, groups = self.manifest_wire_form(manifest)
        request = ProvisionRequest(
            manifest_hash=manifest_hash, seed=int(seed), ring=ring, groups=groups, party=party
        )
        expected = {(kind, tuple(shape)): count for kind, shape, count in groups}
        pool = RandomnessPool(ring=ring, manifest_hash=manifest_hash)
        with self._lock:
            self._transport.send_control(encode_frame(request.header()))
            while True:
                frame = self._transport.recv_control()
                if frame is None:
                    raise ConnectionError("factory closed the session mid-provision")
                header, payload = decode_frame(frame)
                frame_type = header["type"]
                if frame_type == "provision-chunk":
                    chunk = ProvisionChunk.from_frame(header, payload)
                    key = (chunk.kind, tuple(chunk.shape))
                    if expected.get(key) != chunk.count:
                        raise ValueError(
                            f"factory sent group {key} x{chunk.count}, manifest "
                            f"{manifest_hash} expects x{expected.get(key)}"
                        )
                    arrays = dict(chunk.arrays)
                    if party is not None:
                        # Synthesize the zeroed other share-world the SPMD
                        # protocol program expects (garbage lanes only).
                        template = next(iter(arrays.values()))
                        for name in GROUP_FIELDS[chunk.kind]:
                            if name not in arrays:
                                reference = group_reference(arrays, chunk.kind, name)
                                arrays[name] = np.zeros_like(
                                    reference if reference is not None else template
                                )
                    pool.install_group(chunk.kind, chunk.shape, arrays)
                    expected.pop(key, None)
                elif frame_type == "provision-done":
                    done = ProvisionDone.from_header(header)
                    self.last_inventory_depth = done.inventory_depth
                    self.last_source = done.source
                    break
                elif frame_type == "error":
                    raise RuntimeError(f"factory error: {header.get('message')}")
                else:
                    raise ValueError(f"unexpected provisioning frame {frame_type!r}")
        if expected:
            raise ValueError(f"factory reply missing groups: {sorted(expected)}")
        if party is not None:
            pool.restricted_to = party
        return pool

    def announce(self, manifest, seeds: List[int]) -> int:
        """Advertise upcoming job seeds; returns how many were queued."""
        manifest_hash, ring, groups = self.manifest_wire_form(manifest)
        request = AnnounceRequest(
            manifest_hash=manifest_hash, seeds=list(seeds), ring=ring, groups=groups
        )
        with self._lock:
            self._transport.send_control(encode_frame(request.header()))
            header = self._expect_reply("announce-ack")
        return int(header["queued"])

    def stats(self) -> Dict[str, object]:
        """The factory's JSON stats snapshot."""
        with self._lock:
            self._transport.send_control(encode_frame({"type": "stats"}))
            header = self._expect_reply("stats-ack")
        return header["stats"]

    def _expect_reply(self, expected_type: str) -> Dict[str, object]:
        frame = self._transport.recv_control()
        if frame is None:
            raise ConnectionError("factory closed the session mid-reply")
        header, _payload = decode_frame(frame)
        if header["type"] == "error":
            raise RuntimeError(f"factory error: {header.get('message')}")
        if header["type"] != expected_type:
            raise ValueError(
                f"expected a {expected_type!r} reply, got {header['type']!r}"
            )
        return header

    def close(self) -> None:
        with self._lock:
            self._transport.close()

    def __enter__(self) -> "FactoryClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def group_reference(arrays, kind: str, missing_name: str):
    """The same-world counterpart of a missing field, if present.

    Zero stacks must match the dtype/shape of the field they replace; the
    counterpart of ``a1`` is ``a0`` (and vice versa), which always shares
    both.  Returns ``None`` when the counterpart is absent too.
    """
    if missing_name[-1] in "01":
        counterpart = missing_name[:-1] + ("1" if missing_name.endswith("0") else "0")
        return arrays.get(counterpart)
    return None


def run_factory_server(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    nice: Optional[int] = None,
    ready_queue=None,
    stop_event=None,
) -> None:
    """Run a standalone factory server process (producer included).

    ``nice`` lowers the whole process's scheduling priority so background
    production cannot steal meaningful CPU from online serving on the same
    host.  ``ready_queue`` (multiprocessing) receives the bound
    ``(host, port)``; ``stop_event`` ends the loop.
    """
    if nice is not None:
        try:
            os.nice(nice)
        except OSError:  # pragma: no cover - permission-restricted hosts
            pass
    store = InventoryStore(root)
    factory = RandomnessFactory(store)
    server = FactoryServer(factory, host=host, port=port)
    server.start()
    if ready_queue is not None:
        ready_queue.put(server.address)
    try:
        while stop_event is None or not stop_event.is_set():
            time.sleep(0.05)
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.close()
