"""Disk-backed inventory of pre-generated randomness pool bundles.

A :class:`PoolBundle` is the complete correlated-randomness material of one
(manifest, seed) pair — every (kind, shape) group of the manifest as
stacked share arrays, exactly what :meth:`TrustedDealer.preprocess` would
generate at that seed.  Bundles are what the factory pre-generates, spools
to disk and streams to party servers.

The :class:`InventoryStore` keys bundles by the manifest's
:attr:`~repro.crypto.plan.PreprocessingManifest.content_hash` and spools
each one as a single ``.npz`` file (atomic tmp-file + rename, so a reader
never observes a half-written bundle).  Besides storage it keeps the
accounting capacity planning needs:

- **depth** — bundles on hand per manifest hash;
- **consumption rate** — served bundles per second over a sliding window;
- **refill lead time** — EWMA of the wall-clock cost of producing one
  bundle, i.e. how far ahead of demand the producer must run.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.dealer import RandomnessPool
from repro.crypto.ring import FixedPointRing
from repro.offline.generation import (
    GROUP_FIELDS,
    generate_group,
    restrict_group_arrays,
)

#: serialization format tag of spooled bundles
BUNDLE_FORMAT = "pool-bundle/v1"


@dataclass
class GroupMaterial:
    """One (kind, shape) group of a bundle: stacked share arrays."""

    kind: str
    shape: Tuple[int, ...]
    count: int
    arrays: Dict[str, np.ndarray]

    @property
    def nbytes(self) -> int:
        return sum(stack.nbytes for stack in self.arrays.values())


@dataclass
class PoolBundle:
    """All correlated randomness of one (manifest, seed) pair.

    Holds both share-worlds; :meth:`build_pool` materializes the
    party-restricted :class:`~repro.crypto.dealer.RandomnessPool` a server
    consumes, bit-identical to local generation at the same seed.
    """

    manifest_hash: str
    seed: int
    ring: FixedPointRing
    groups: List[GroupMaterial] = field(default_factory=list)

    @classmethod
    def generate(cls, manifest, seed: int) -> "PoolBundle":
        """Generate the bundle of ``manifest`` at ``seed`` (vectorized).

        Uses the same per-group substreams as a fresh
        :class:`~repro.crypto.dealer.TrustedDealer` at the same seed, so
        factory-produced buffers match local cold generation bit for bit.
        """
        return cls.from_groups(
            ring=manifest.ring,
            manifest_hash=manifest.content_hash,
            groups=manifest.grouped_requests(),
            seed=seed,
        )

    @classmethod
    def from_groups(
        cls,
        ring: FixedPointRing,
        manifest_hash: str,
        groups: List[Tuple[str, Tuple[int, ...], int]],
        seed: int,
    ) -> "PoolBundle":
        """Generate from grouped (kind, shape, count) requests directly —
        the factory path, where manifests arrive already grouped on the
        wire."""
        return cls(
            manifest_hash=manifest_hash,
            seed=int(seed),
            ring=ring,
            groups=[
                GroupMaterial(
                    kind=kind,
                    shape=tuple(shape),
                    count=int(count),
                    arrays=generate_group(ring, seed, kind, tuple(shape), int(count)),
                )
                for kind, shape, count in groups
            ],
        )

    @property
    def material_bytes(self) -> int:
        return sum(group.nbytes for group in self.groups)

    def restricted_groups(self, party: Optional[int]) -> List[GroupMaterial]:
        """The groups with the other party's share-world zeroed.

        ``party=None`` returns the full two-world groups (simulation mode).
        The genuine party's stacks are shared, not copied.
        """
        if party is None:
            return self.groups
        return [
            GroupMaterial(
                kind=group.kind,
                shape=group.shape,
                count=group.count,
                arrays=restrict_group_arrays(group.arrays, group.kind, party),
            )
            for group in self.groups
        ]

    def build_pool(self, party: Optional[int] = None) -> RandomnessPool:
        """Materialize the consumable pool (optionally party-restricted)."""
        pool = RandomnessPool(ring=self.ring, manifest_hash=self.manifest_hash)
        for group in self.restricted_groups(party):
            pool.install_group(group.kind, group.shape, group.arrays)
        if party is not None:
            pool.restricted_to = party
        return pool

    # -- (de)serialization --------------------------------------------------- #
    def to_npz_bytes(self) -> bytes:
        """Serialize to an in-memory ``.npz`` image (uncompressed)."""
        payload: Dict[str, np.ndarray] = {}
        meta = {
            "format": BUNDLE_FORMAT,
            "manifest_hash": self.manifest_hash,
            "seed": self.seed,
            "ring": {"ring_bits": self.ring.ring_bits, "frac_bits": self.ring.frac_bits},
            "groups": [
                {"kind": group.kind, "shape": list(group.shape), "count": group.count}
                for group in self.groups
            ],
        }
        payload["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        for index, group in enumerate(self.groups):
            for name in GROUP_FIELDS[group.kind]:
                payload[f"g{index}:{name}"] = group.arrays[name]
        buffer = io.BytesIO()
        np.savez(buffer, **payload)
        return buffer.getvalue()

    @classmethod
    def from_npz(cls, source) -> "PoolBundle":
        """Load a bundle from a path or file-like ``.npz`` source."""
        with np.load(source) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            if meta.get("format") != BUNDLE_FORMAT:
                raise ValueError(
                    f"unsupported bundle format {meta.get('format')!r}; "
                    f"expected {BUNDLE_FORMAT!r}"
                )
            ring = FixedPointRing(
                ring_bits=int(meta["ring"]["ring_bits"]),
                frac_bits=int(meta["ring"]["frac_bits"]),
            )
            groups = [
                GroupMaterial(
                    kind=entry["kind"],
                    shape=tuple(entry["shape"]),
                    count=int(entry["count"]),
                    arrays={
                        name: archive[f"g{index}:{name}"]
                        for name in GROUP_FIELDS[entry["kind"]]
                    },
                )
                for index, entry in enumerate(meta["groups"])
            ]
        return cls(
            manifest_hash=meta["manifest_hash"],
            seed=int(meta["seed"]),
            ring=ring,
            groups=groups,
        )


class InventoryStore:
    """Npz-spooled store of :class:`PoolBundle` objects keyed by manifest hash.

    Layout: ``root/<manifest_hash>/<seed>.npz``.  Writes spool through a
    temp file in the same directory and ``os.replace`` into place, so
    concurrent readers only ever see complete bundles.  All accounting is
    process-local and thread-safe.
    """

    def __init__(self, root: str, *, rate_window: int = 64) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self._served_times: Dict[str, Deque[float]] = {}
        self._generation_ewma: Dict[str, float] = {}
        self._rate_window = int(rate_window)
        self.produced_total = 0
        self.served_total = 0

    # -- paths ---------------------------------------------------------------- #
    def _hash_dir(self, manifest_hash: str) -> str:
        return os.path.join(self.root, manifest_hash)

    def _bundle_path(self, manifest_hash: str, seed: int) -> str:
        return os.path.join(self._hash_dir(manifest_hash), f"{int(seed)}.npz")

    # -- storage -------------------------------------------------------------- #
    def put(self, bundle: PoolBundle, *, generation_seconds: Optional[float] = None) -> str:
        """Spool a bundle to disk (atomic) and record its production cost."""
        directory = self._hash_dir(bundle.manifest_hash)
        os.makedirs(directory, exist_ok=True)
        final_path = self._bundle_path(bundle.manifest_hash, bundle.seed)
        data = bundle.to_npz_bytes()
        descriptor, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(tmp_path, final_path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        with self._lock:
            self.produced_total += 1
            if generation_seconds is not None:
                previous = self._generation_ewma.get(bundle.manifest_hash)
                self._generation_ewma[bundle.manifest_hash] = (
                    generation_seconds
                    if previous is None
                    else 0.8 * previous + 0.2 * generation_seconds
                )
        return final_path

    def contains(self, manifest_hash: str, seed: int) -> bool:
        return os.path.exists(self._bundle_path(manifest_hash, seed))

    def seeds(self, manifest_hash: str) -> List[int]:
        """Seeds of the bundles on hand for one manifest hash, sorted."""
        directory = self._hash_dir(manifest_hash)
        if not os.path.isdir(directory):
            return []
        found = []
        for entry in os.listdir(directory):
            stem, extension = os.path.splitext(entry)
            if extension == ".npz":
                try:
                    found.append(int(stem))
                except ValueError:
                    continue
        return sorted(found)

    def depth(self, manifest_hash: str) -> int:
        """Bundles on hand for one manifest hash."""
        return len(self.seeds(manifest_hash))

    def load(self, manifest_hash: str, seed: int) -> Optional[PoolBundle]:
        """Load one bundle (``None`` if not spooled); counts as a serve."""
        path = self._bundle_path(manifest_hash, seed)
        if not os.path.exists(path):
            return None
        bundle = PoolBundle.from_npz(path)
        with self._lock:
            self.served_total += 1
            window = self._served_times.setdefault(
                manifest_hash, deque(maxlen=self._rate_window)
            )
            window.append(time.monotonic())
        return bundle

    def remove(self, manifest_hash: str, seed: int) -> bool:
        """Drop a consumed bundle from the spool."""
        path = self._bundle_path(manifest_hash, seed)
        try:
            os.unlink(path)
            return True
        except FileNotFoundError:
            return False

    def hashes(self) -> List[str]:
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
        )

    # -- accounting ----------------------------------------------------------- #
    def consumption_rate(self, manifest_hash: str) -> float:
        """Served bundles per second over the sliding window (0 if cold)."""
        with self._lock:
            window = self._served_times.get(manifest_hash)
            if not window or len(window) < 2:
                return 0.0
            elapsed = window[-1] - window[0]
            if elapsed <= 0:
                return 0.0
            return (len(window) - 1) / elapsed

    def generation_seconds(self, manifest_hash: str) -> Optional[float]:
        """EWMA wall-clock cost of producing one bundle for this hash."""
        with self._lock:
            return self._generation_ewma.get(manifest_hash)

    def refill_lead_time(self, manifest_hash: str) -> Optional[float]:
        """Seconds of demand one bundle's production covers vs. consumes.

        ``generation_seconds * consumption_rate`` is the number of bundles
        consumed while one is produced; the lead time is how long before
        projected exhaustion the producer must start:
        ``depth / rate - generation_seconds`` (``None`` when idle).
        """
        rate = self.consumption_rate(manifest_hash)
        generation = self.generation_seconds(manifest_hash)
        if generation is None or rate <= 0:
            return None
        return self.depth(manifest_hash) / rate - generation

    def stats_snapshot(self) -> Dict[str, object]:
        """JSON-serializable accounting snapshot (documented schema).

        ``{"schema": "offline-inventory/v1", "produced_total": int,
        "served_total": int, "inventory": {hash: {"depth": int,
        "seeds": [int], "consumption_per_s": float,
        "generation_s": float | None, "refill_lead_time_s": float | None}}}``
        """
        inventory: Dict[str, object] = {}
        for manifest_hash in self.hashes():
            inventory[manifest_hash] = {
                "depth": self.depth(manifest_hash),
                "seeds": self.seeds(manifest_hash),
                "consumption_per_s": self.consumption_rate(manifest_hash),
                "generation_s": self.generation_seconds(manifest_hash),
                "refill_lead_time_s": self.refill_lead_time(manifest_hash),
            }
        with self._lock:
            produced, served = self.produced_total, self.served_total
        return {
            "schema": "offline-inventory/v1",
            "produced_total": produced,
            "served_total": served,
            "inventory": inventory,
        }
