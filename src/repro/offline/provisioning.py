"""Typed control frames of the offline provisioning protocol.

Party servers talk to the randomness factory over the existing transport
session layer (:meth:`~repro.crypto.transport.Transport.send_control` /
``recv_control``): every provisioning message is one opaque control frame,
so control bytes stay accounted separately from protocol payload and
``payload == manifest`` verification remains exact on serving links.

A frame is a 4-byte big-endian header length, a JSON header, and an
optional raw binary payload.  The session is strict request/reply:

- ``ProvisionRequest`` — fetch the pool material of ``(manifest_hash,
  seed)``, optionally restricted to one party.  Carries the ring and the
  grouped (kind, shape, count) requests, so the factory can cold-generate
  a miss without a registration handshake.
- ``ProvisionChunk`` (reply, one per group) — stacked share arrays of one
  (kind, shape) group; for a party-restricted fetch only that party's
  share-world is shipped (the client synthesizes the zeroed world).
- ``ProvisionDone`` (reply terminator) — group/byte totals, the serving
  source (``"inventory"`` or ``"cold"``) and the remaining inventory
  depth for the hash.
- ``AnnounceRequest`` / ``AnnounceAck`` — advertise upcoming job seeds so
  the producer can pre-generate bundles ahead of demand.
- ``StatsRequest`` / ``StatsReply`` — the factory's JSON stats snapshot.
- ``ProvisionError`` — error reply carrying the server-side message.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.ring import FixedPointRing

#: wire tag of the provisioning protocol (bumped on layout changes)
PROVISION_PROTOCOL = "offline-provision/v1"

_HEADER_LEN = struct.Struct(">I")

#: grouped manifest requests on the wire: [kind, shape, count]
WireGroups = List[Tuple[str, Tuple[int, ...], int]]


def _ring_to_wire(ring: FixedPointRing) -> Dict[str, int]:
    return {"ring_bits": ring.ring_bits, "frac_bits": ring.frac_bits}


def _ring_from_wire(data: Dict[str, int]) -> FixedPointRing:
    return FixedPointRing(ring_bits=int(data["ring_bits"]), frac_bits=int(data["frac_bits"]))


def _groups_to_wire(groups: WireGroups) -> List[List[object]]:
    return [[kind, list(shape), int(count)] for kind, shape, count in groups]


def _groups_from_wire(data: List[List[object]]) -> WireGroups:
    return [(str(kind), tuple(int(d) for d in shape), int(count)) for kind, shape, count in data]


@dataclass
class ProvisionRequest:
    """Fetch the pool material of one (manifest, seed) pair."""

    manifest_hash: str
    seed: int
    ring: FixedPointRing
    groups: WireGroups
    party: Optional[int] = None

    def header(self) -> Dict[str, object]:
        return {
            "type": "provision-request",
            "protocol": PROVISION_PROTOCOL,
            "manifest_hash": self.manifest_hash,
            "seed": int(self.seed),
            "ring": _ring_to_wire(self.ring),
            "groups": _groups_to_wire(self.groups),
            "party": self.party,
        }

    @classmethod
    def from_header(cls, header: Dict[str, object]) -> "ProvisionRequest":
        party = header.get("party")
        return cls(
            manifest_hash=str(header["manifest_hash"]),
            seed=int(header["seed"]),
            ring=_ring_from_wire(header["ring"]),
            groups=_groups_from_wire(header["groups"]),
            party=None if party is None else int(party),
        )


@dataclass
class ProvisionChunk:
    """Stacked share arrays of one (kind, shape) group."""

    kind: str
    shape: Tuple[int, ...]
    count: int
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def header_and_payload(self) -> Tuple[Dict[str, object], bytes]:
        fields = []
        parts = []
        for name, stack in self.arrays.items():
            fields.append(
                {"name": name, "dtype": stack.dtype.str, "shape": list(stack.shape)}
            )
            parts.append(np.ascontiguousarray(stack).tobytes())
        header = {
            "type": "provision-chunk",
            "kind": self.kind,
            "shape": list(self.shape),
            "count": int(self.count),
            "fields": fields,
        }
        return header, b"".join(parts)

    @classmethod
    def from_frame(cls, header: Dict[str, object], payload: bytes) -> "ProvisionChunk":
        # A writable backing buffer: received share stacks behave exactly
        # like locally generated ones (restriction memsets them in place).
        backing = bytearray(payload)
        arrays: Dict[str, np.ndarray] = {}
        offset = 0
        for entry in header["fields"]:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(d) for d in entry["shape"])
            nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
            arrays[str(entry["name"])] = np.frombuffer(
                backing, dtype=dtype, count=max(int(np.prod(shape, dtype=np.int64)), 0), offset=offset
            ).reshape(shape)
            offset += nbytes
        if offset != len(payload):
            raise ValueError(
                f"provision chunk payload is {len(payload)} bytes but its "
                f"fields describe {offset}"
            )
        return cls(
            kind=str(header["kind"]),
            shape=tuple(int(d) for d in header["shape"]),
            count=int(header["count"]),
            arrays=arrays,
        )


@dataclass
class ProvisionDone:
    """Terminates a provisioning reply stream."""

    manifest_hash: str
    seed: int
    groups: int
    material_bytes: int
    source: str  # "inventory" | "cold"
    inventory_depth: int

    def header(self) -> Dict[str, object]:
        return {
            "type": "provision-done",
            "manifest_hash": self.manifest_hash,
            "seed": int(self.seed),
            "groups": int(self.groups),
            "material_bytes": int(self.material_bytes),
            "source": self.source,
            "inventory_depth": int(self.inventory_depth),
        }

    @classmethod
    def from_header(cls, header: Dict[str, object]) -> "ProvisionDone":
        return cls(
            manifest_hash=str(header["manifest_hash"]),
            seed=int(header["seed"]),
            groups=int(header["groups"]),
            material_bytes=int(header["material_bytes"]),
            source=str(header["source"]),
            inventory_depth=int(header["inventory_depth"]),
        )


@dataclass
class AnnounceRequest:
    """Advertise upcoming job seeds so the producer can run ahead."""

    manifest_hash: str
    seeds: List[int]
    ring: FixedPointRing
    groups: WireGroups

    def header(self) -> Dict[str, object]:
        return {
            "type": "announce",
            "protocol": PROVISION_PROTOCOL,
            "manifest_hash": self.manifest_hash,
            "seeds": [int(seed) for seed in self.seeds],
            "ring": _ring_to_wire(self.ring),
            "groups": _groups_to_wire(self.groups),
        }

    @classmethod
    def from_header(cls, header: Dict[str, object]) -> "AnnounceRequest":
        return cls(
            manifest_hash=str(header["manifest_hash"]),
            seeds=[int(seed) for seed in header["seeds"]],
            ring=_ring_from_wire(header["ring"]),
            groups=_groups_from_wire(header["groups"]),
        )


# --------------------------------------------------------------------------- #
# Frame codec over Transport control messages
# --------------------------------------------------------------------------- #
def encode_frame(header: Dict[str, object], payload: bytes = b"") -> bytes:
    """One provisioning frame: header length, JSON header, raw payload."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    return _HEADER_LEN.pack(len(header_bytes)) + header_bytes + payload


def decode_frame(frame: bytes) -> Tuple[Dict[str, object], bytes]:
    """Split a provisioning frame back into (header, payload)."""
    if len(frame) < _HEADER_LEN.size:
        raise ValueError(f"provisioning frame too short: {len(frame)} bytes")
    (header_len,) = _HEADER_LEN.unpack_from(frame)
    end = _HEADER_LEN.size + header_len
    if len(frame) < end:
        raise ValueError(
            f"provisioning frame truncated: header claims {header_len} bytes, "
            f"{len(frame) - _HEADER_LEN.size} available"
        )
    header = json.loads(frame[_HEADER_LEN.size : end].decode())
    if not isinstance(header, dict) or "type" not in header:
        raise ValueError("provisioning frame header lacks a 'type' field")
    return header, frame[end:]
