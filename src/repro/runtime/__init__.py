"""Networked two-party runtime: process-separated execution of compiled plans.

:mod:`repro.runtime.party` runs one computing party (one share-world) against
a transport; :mod:`repro.runtime.twoprocess` orchestrates a full two-OS-process
private inference over localhost TCP and verifies the measured on-wire bytes
against the plan's preprocessing manifest.
"""

from repro.runtime.party import (
    PartyExecution,
    PartyJob,
    PartyReport,
    execute_plan_as_party,
    run_party_worker,
)
from repro.runtime.twoprocess import (
    TwoProcessResult,
    run_two_process_inference,
)

__all__ = [
    "PartyExecution",
    "PartyJob",
    "PartyReport",
    "execute_plan_as_party",
    "run_party_worker",
    "TwoProcessResult",
    "run_two_process_inference",
]
