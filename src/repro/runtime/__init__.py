"""Networked two-party runtime: process-separated execution of compiled plans.

:mod:`repro.runtime.party` runs one computing party (one share-world) against
a transport; :mod:`repro.runtime.twoprocess` orchestrates a full two-OS-process
private inference over localhost TCP and verifies the measured on-wire bytes
against the plan's preprocessing manifest; :mod:`repro.runtime.server` keeps a
party alive across requests — one long-lived process per party executing a
stream of jobs over one persistent connection against pre-provisioned
randomness pools.
"""

from repro.runtime.party import (
    PartyExecution,
    PartyJob,
    PartyReport,
    execute_plan_as_party,
    run_party_worker,
)
from repro.runtime.server import (
    JobFailed,
    JobReport,
    JobRequest,
    JobValidationError,
    PartyServer,
    ProvisionReport,
    ProvisionRequest,
    ServerConfig,
    ServerStats,
    ShutdownRequest,
    derive_job_seed,
    run_party_server,
)
from repro.runtime.twoprocess import (
    TwoProcessResult,
    run_two_process_inference,
)

__all__ = [
    "JobFailed",
    "JobReport",
    "JobRequest",
    "JobValidationError",
    "PartyExecution",
    "PartyJob",
    "PartyReport",
    "PartyServer",
    "ProvisionReport",
    "ProvisionRequest",
    "ServerConfig",
    "ServerStats",
    "ShutdownRequest",
    "derive_job_seed",
    "execute_plan_as_party",
    "run_party_server",
    "run_party_worker",
    "TwoProcessResult",
    "run_two_process_inference",
]
