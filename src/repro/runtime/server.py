"""Persistent party server: one long-lived process per party, many jobs.

The PR-2 runtime (:mod:`repro.runtime.twoprocess`) spawns two fresh OS
processes and a fresh TCP connection *per inference* — correct, but every
request pays process start-up, plan compilation, connection establishment
and the whole offline phase.  This module keeps a party alive across
requests:

- :func:`run_party_server` is the process entry point.  It opens the
  inter-party :class:`~repro.crypto.transport.Transport` **once**, then
  executes a stream of :class:`JobRequest` messages (received over the
  driver's control pipe) against the persistent connection, answering each
  with a :class:`JobReport`.
- Correlated randomness is **pre-provisioned**: a background provisioner
  thread keeps a buffer of party-restricted
  :class:`~repro.crypto.dealer.RandomnessPool`\\ s per ``(model, batch)``
  key, refilled whenever it drops below a low-water mark, so the online
  path of a warm server performs zero dealer generation calls.
- Job seeds are **deterministic**: :func:`derive_job_seed` maps
  ``(base_seed, model, batch, counter)`` to the session seed, so the
  dispatcher (which secret-shares the query), both party servers (which
  regenerate the dealer stream) and any verifier (which replays the job on
  the in-process engine) all agree without communicating — each job stays
  bit-identical to ``SecureInferenceEngine.execute`` at the same seed.

Session framing over the persistent connection: before each job the
parties exchange a control frame carrying ``(job id, model, batch,
counter)`` and refuse to proceed on a mismatch, so a desynchronized
dispatcher fails loudly instead of mixing share-worlds.  Control bytes are
accounted separately from protocol payload, which keeps the per-job
payload deltas equal to the plan manifest's prediction — verified after
every job, exactly as in the one-shot runtime.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.crypto.channel import PartyChannel
from repro.crypto.context import TwoPartyContext
from repro.crypto.dealer import RandomnessPool, TrustedDealer
from repro.crypto.passes import optimize_plan
from repro.crypto.plan import compile_plan
from repro.crypto.ring import DEFAULT_RING, FixedPointRing
from repro.crypto.transport import (
    FaultPlan,
    FaultyTransport,
    TcpListener,
    TransportEndpoint,
)
from repro.models.specs import ModelSpec
from repro.runtime.party import (
    execute_plan_as_party,
    verify_against_plan,
)

#: buffered pools per (model, batch) key below which the provisioner refills
DEFAULT_LOW_WATER = 1
#: target buffer depth the provisioner refills up to
DEFAULT_HIGH_WATER = 3


def derive_job_seed(base_seed: int, model: str, batch_size: int, counter: int) -> int:
    """Deterministic session seed of the ``counter``-th job of a plan key.

    Pure arithmetic on stable inputs: the dispatcher, both party servers and
    any out-of-band verifier compute the same seed without coordination.
    """
    digest = zlib.crc32(f"{model}:{batch_size}:{counter}".encode("utf-8"))
    return (int(base_seed) * 1_000_003 + digest) % (2**31 - 1)


# --------------------------------------------------------------------------- #
# Control-pipe messages (driver <-> party server process)
# --------------------------------------------------------------------------- #


@dataclass
class ServerConfig:
    """Everything a party server needs to boot, sent once over the pipe.

    ``coalesce_rounds`` selects the round-coalescing schedule (default) or
    the sequential reference execution for every plan the server compiles;
    both parties receive the same config, so they always agree.
    """

    base_seed: int
    models: Dict[str, ModelSpec]
    weights: Dict[str, Dict[str, Dict[str, np.ndarray]]]
    warm_batch_sizes: Tuple[int, ...] = ()
    provision_pools: int = 0
    low_water: int = DEFAULT_LOW_WATER
    high_water: int = DEFAULT_HIGH_WATER
    ring: FixedPointRing = DEFAULT_RING
    verify: bool = True
    coalesce_rounds: bool = True
    #: bind coalesced plans to fused local-compute kernels (same wire
    #: behavior, bit-identical logits, fewer numpy passes per op); only
    #: meaningful with ``coalesce_rounds``
    lower_local_compute: bool = True
    #: per-party link shaping / scripted fault schedules: the party's
    #: transport is wrapped in a :class:`FaultyTransport` right after the
    #: connection opens.  ``None`` (or a missing party key) means a clean
    #: link.  Chaos tests and shaped-link benchmarks ride through here.
    fault_plans: Optional[Dict[int, FaultPlan]] = None
    #: (host, port) of a randomness-factory server.  When set, pool
    #: provisioning *fetches* party-restricted buffers from the factory's
    #: inventory instead of generating locally; any factory failure falls
    #: back to local cold generation at the identical seed, so logits stay
    #: bit-for-bit unchanged either way.
    factory_address: Optional[Tuple[str, int]] = None
    #: job seeds to announce ahead to the factory on each refill, so the
    #: producer pre-generates bundles before the servers ask (0 = reactive)
    factory_announce_ahead: int = 4
    #: seconds between liveness frames the server emits over the driver's
    #: control pipe (a background thread, so heartbeats keep flowing while a
    #: job computes or waits on the wire).  ``0`` disables emission — the
    #: driver then falls back to its hard pipe/timeout detection only.
    heartbeat_interval: float = 1.0


@dataclass
class JobRequest:
    """One inference job: executed by both parties in lock-step."""

    job_id: int
    model: str
    batch_size: int
    counter: int
    input_share: np.ndarray
    #: explicit session seed for deterministic replay.  ``None`` (the
    #: normal path) derives the seed from the server's own base seed via
    #: :func:`derive_job_seed`; a retry of a job that first ran on a dead
    #: shard pins the original seed so the recovered logits stay
    #: bit-identical to the fault-free run.
    seed: Optional[int] = None


class JobValidationError(ValueError):
    """A job rejected *before* any frame crossed the wire.

    Validation runs on deterministic inputs (both parties hold identically
    shaped shares and the same model registry), so both parties reject the
    same jobs — the session stays in sync and the server keeps serving.
    """


@dataclass
class JobFailed:
    """Job-scoped failure reply: the job was rejected, the server lives on."""

    job_id: int
    error: str


@dataclass
class JobReport:
    """A party's answer to one :class:`JobRequest`."""

    job_id: int
    party: int
    logit_share: np.ndarray
    communication_bytes: int
    communication_rounds: int
    payload_bytes_sent: int
    payload_bytes_received: int
    online_seconds: float
    pool_hit: bool
    pool_buffered: int
    seed: int
    #: OS pid of the serving process — every job of a shard must report the
    #: same two pids, the falsifiable form of "zero per-request spawns"
    pid: int = 0
    #: frame-format-v1 equivalent of ``communication_bytes`` — lets the
    #: serving dashboards compute the packed wire format's bytes_saved_pct
    unpacked_payload_bytes: int = 0
    #: local-compute time of the job's online phase (wire waits excluded)
    cpu_time_ns: int = 0
    #: fused-kernel invocations of the job (0 without kernel lowering)
    fused_kernel_calls: int = 0


@dataclass
class ProvisionRequest:
    """Warm-up command: buffer ``count`` pools for ``(model, batch_size)``."""

    model: str
    batch_size: int
    count: int


@dataclass
class ProvisionReport:
    """Answer to a :class:`ProvisionRequest`: buffer depth after refill."""

    model: str
    batch_size: int
    buffered: int
    provision_seconds: float
    #: lifetime pools this party fetched from the factory inventory
    pools_from_factory: int = 0
    #: lifetime factory fetches that failed over to local cold generation
    factory_fallbacks: int = 0
    #: factory inventory depth as of the last successful fetch (-1 = never)
    factory_inventory_depth: int = -1


@dataclass
class Heartbeat:
    """One liveness frame a party server emits over the control pipe.

    Emitted by a background thread at ``ServerConfig.heartbeat_interval``,
    *including* while a job is executing or blocked on the inter-party
    wire — so the driver can distinguish "slow but alive" from "wedged".
    The snapshot it carries is what a heartbeat-miss diagnostic needs:
    when the party was last seen, which job it was inside, and how far
    through the round schedule it had come.
    """

    party: int
    pid: int
    #: wall-clock ``time.time()`` at emission (the last-seen timestamp a
    #: heartbeat-miss error reports)
    timestamp: float
    jobs_executed: int
    #: job id currently executing on this party (``None`` between jobs)
    job_id: Optional[int] = None
    #: round frames this party has sent over the inter-party transport so
    #: far — a monotone progress cursor through the job's round schedule
    round_index: int = 0


@dataclass
class ShutdownRequest:
    """Ask the server to run the graceful wire shutdown and exit."""


@dataclass
class ServerStats:
    """Lifetime counters a server sends back right before exiting."""

    party: int
    jobs_executed: int
    pool_hits: int
    pool_misses: int
    pools_provisioned: int
    plans_compiled: int
    control_bytes_sent: int
    control_bytes_received: int
    payload_bytes_sent: int
    payload_bytes_received: int
    #: summed online-phase seconds across all jobs (this party's view)
    online_seconds: float = 0.0
    #: summed local-compute nanoseconds across all jobs (this party's view)
    cpu_time_ns: int = 0
    #: summed fused-kernel invocations across all jobs
    fused_kernel_calls: int = 0
    #: pools fetched from the randomness factory's inventory
    pools_from_factory: int = 0
    #: factory fetches that failed over to local cold generation
    factory_fallbacks: int = 0
    #: factory inventory depth for this server's hottest manifest, as of
    #: the last successful fetch (-1 = never fetched)
    factory_inventory_depth: int = -1


# --------------------------------------------------------------------------- #
# Server internals
# --------------------------------------------------------------------------- #


@dataclass
class _PlanEntry:
    #: the executed artifact: a ScheduledPlan (coalesce_rounds) or a bare
    #: InferencePlan (sequential reference mode)
    plan: object
    #: FIFO of (counter, party-restricted pool); counters strictly increase
    pools: Deque[Tuple[int, RandomnessPool]] = field(default_factory=deque)
    next_counter: int = 0
    #: the plan's preprocessing manifest (cached — factory fetches and
    #: announcements reuse its content hash and grouped requests)
    manifest: object = None


class PartyServer:
    """The in-process half of :func:`run_party_server` (testable directly).

    Holds the persistent transport + channel, the compiled-plan cache, the
    randomness buffers and the background provisioner for one party.
    """

    def __init__(self, party: int, transport, config: ServerConfig) -> None:
        self.party = party
        self.transport = transport
        self.config = config
        self.ring = config.ring
        self.channel = PartyChannel(transport, party, ring=config.ring)
        self.stats = ServerStats(
            party=party,
            jobs_executed=0,
            pool_hits=0,
            pool_misses=0,
            pools_provisioned=0,
            plans_compiled=0,
            control_bytes_sent=0,
            control_bytes_received=0,
            payload_bytes_sent=0,
            payload_bytes_received=0,
        )
        self._entries: Dict[Tuple[str, int], _PlanEntry] = {}
        #: job id currently executing (``None`` between jobs) — read by the
        #: heartbeat thread without the lock (GIL-atomic attribute load)
        self.current_job_id: Optional[int] = None
        self._lock = threading.Lock()
        self._refill = threading.Condition(self._lock)
        self._closing = False
        self._provisioner: Optional[threading.Thread] = None
        self._factory = None
        self._factory_unavailable = False

    # -- plan / pool management --------------------------------------------- #
    def _entry(self, model: str, batch_size: int) -> _PlanEntry:
        key = (model, batch_size)
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            return entry
        spec = self.config.models.get(model)
        if spec is None:
            raise KeyError(
                f"party {self.party}: unknown model {model!r}; "
                f"registered: {sorted(self.config.models)}"
            )
        plan = compile_plan(spec, batch_size=batch_size, ring=self.ring)
        if self.config.coalesce_rounds:
            plan = optimize_plan(
                plan, lower=getattr(self.config, "lower_local_compute", True)
            )
        manifest = getattr(plan, "manifest", None)
        with self._lock:
            entry = self._entries.setdefault(key, _PlanEntry(plan=plan, manifest=manifest))
            if entry.plan is plan:
                self.stats.plans_compiled += 1
        return entry

    # -- factory provisioning ------------------------------------------------- #
    def _factory_client(self):
        """The (lazily connected) randomness-factory client, if configured.

        A connection or session failure permanently reverts this server to
        local cold generation — correctness is unaffected because both
        paths generate from the identical per-seed substreams.
        """
        address = getattr(self.config, "factory_address", None)
        if address is None or self._factory_unavailable:
            return None
        if self._factory is None:
            from repro.offline.factory import FactoryClient

            try:
                self._factory = FactoryClient(tuple(address), retries=3)
            except (ConnectionError, OSError):
                self._factory_unavailable = True
                with self._lock:
                    self.stats.factory_fallbacks += 1
                return None
        return self._factory

    def _drop_factory(self) -> None:
        client, self._factory = self._factory, None
        self._factory_unavailable = True
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def _pool_at_seed(self, entry: _PlanEntry, seed: int) -> RandomnessPool:
        """The party-restricted pool of one session seed.

        Tries the factory inventory first (streamed, pre-generated), then
        falls back to local cold generation — the fetched buffers are
        bit-identical to what the dealer generates here, so the fallback
        changes latency only, never logits.
        """
        client = self._factory_client()
        if client is not None and entry.manifest is not None:
            try:
                pool = client.fetch_pool(entry.manifest, seed, party=self.party)
                with self._lock:
                    self.stats.pools_from_factory += 1
                    if client.last_inventory_depth is not None:
                        self.stats.factory_inventory_depth = client.last_inventory_depth
                return pool
            except Exception:
                with self._lock:
                    self.stats.factory_fallbacks += 1
                self._drop_factory()
        dealer = TrustedDealer(ring=self.ring, seed=seed)
        return dealer.preprocess(entry.plan).restrict_to_party(self.party)

    def _announce_ahead(self, entry: _PlanEntry, model: str, batch_size: int) -> None:
        """Advertise the next job seeds so the factory can run ahead."""
        ahead = getattr(self.config, "factory_announce_ahead", 0)
        client = self._factory_client()
        if ahead <= 0 or client is None or entry.manifest is None or self.party != 0:
            # one announcing party suffices — both servers derive the same
            # seeds, and the factory spools one shared bundle per seed
            return
        with self._lock:
            start = entry.next_counter
        seeds = [
            derive_job_seed(self.config.base_seed, model, batch_size, start + offset)
            for offset in range(ahead)
        ]
        try:
            client.announce(entry.manifest, seeds)
        except Exception:
            with self._lock:
                self.stats.factory_fallbacks += 1
            self._drop_factory()

    def _generate_pool(self, model: str, batch_size: int, counter: int, plan) -> RandomnessPool:
        seed = derive_job_seed(self.config.base_seed, model, batch_size, counter)
        key = (model, batch_size)
        with self._lock:
            entry = self._entries.get(key)
        if entry is None or entry.plan is not plan:
            entry = _PlanEntry(plan=plan, manifest=getattr(plan, "manifest", None))
        return self._pool_at_seed(entry, seed)

    def provision(self, model: str, batch_size: int, count: int) -> int:
        """Buffer ``count`` additional pools for a key; returns buffer depth."""
        entry = self._entry(model, batch_size)
        for _ in range(max(count, 0)):
            with self._lock:
                counter = entry.next_counter
                entry.next_counter += 1
            seed = derive_job_seed(self.config.base_seed, model, batch_size, counter)
            pool = self._pool_at_seed(entry, seed)
            with self._lock:
                entry.pools.append((counter, pool))
                self.stats.pools_provisioned += 1
        self._announce_ahead(entry, model, batch_size)
        # a pipe-driven warm-up may have just *created* a key; wake the
        # provisioner so it can judge the new key against the low-water mark
        self.notify_provisioner()
        with self._lock:
            return len(entry.pools)

    def _acquire_pool(self, entry: _PlanEntry, model: str, batch_size: int, counter: int) -> Tuple[RandomnessPool, bool]:
        """The pool for job ``counter``: buffered (hit) or generated (miss).

        Concurrent provisioners (pipe-loop warm-up vs. background refill)
        may append out of counter order, so the buffer is scanned for the
        exact counter rather than trusting FIFO order; entries older than
        the job are stale (that job was already served cold) and dropped.
        """
        with self._lock:
            pool = None
            for buffered_counter, buffered_pool in entry.pools:
                if buffered_counter == counter:
                    pool = buffered_pool
                    break
            entry.pools = deque(
                item for item in entry.pools if item[0] > counter
            )
            hit = pool is not None
            if hit:
                self.stats.pool_hits += 1
            entry.next_counter = max(entry.next_counter, counter + 1)
        if pool is None:
            pool = self._generate_pool(model, batch_size, counter, entry.plan)
            with self._lock:
                self.stats.pool_misses += 1
        return pool, hit

    # -- background provisioner --------------------------------------------- #
    def start_provisioner(self) -> None:
        if self.config.provision_pools <= 0:
            return
        self._provisioner = threading.Thread(
            target=self._provision_loop,
            name=f"party{self.party}-provisioner",
            daemon=True,
        )
        self._provisioner.start()

    def _provision_loop(self) -> None:
        while True:
            with self._refill:
                if self._closing:
                    return
                keys = [
                    key
                    for key, entry in self._entries.items()
                    if len(entry.pools) < self.config.low_water
                ]
                if not keys:
                    # deficit check and wait share the lock, so a job's
                    # notify cannot be lost — an idle server sleeps here
                    # indefinitely instead of busy-polling
                    self._refill.wait()
                    continue
            for model, batch_size in keys:
                with self._lock:
                    if self._closing:
                        return
                    entry = self._entries[(model, batch_size)]
                    deficit = self.config.high_water - len(entry.pools)
                self.provision(model, batch_size, deficit)

    def notify_provisioner(self) -> None:
        with self._refill:
            self._refill.notify_all()

    # -- job execution -------------------------------------------------------- #
    def _sync_job_header(self, request: JobRequest) -> None:
        """Exchange and cross-check the job header over the wire.

        Party 0 announces, party 1 verifies: a dispatcher that fed the two
        pipes different job streams is caught before any share crosses the
        wire for the wrong session.
        """
        header = {
            "job": request.job_id,
            "model": request.model,
            "batch": request.batch_size,
            "counter": request.counter,
            "seed": request.seed,
        }
        if self.party == 0:
            self.transport.send_control(json.dumps(header).encode("utf-8"))
        else:
            announced = self.transport.recv_control()
            if announced is None:
                raise ConnectionError(
                    "peer shut the session down while a job was pending"
                )
            peer_header = json.loads(announced.decode("utf-8"))
            if peer_header != header:
                raise RuntimeError(
                    f"party 1: job desync — peer announced {peer_header}, "
                    f"local pipe delivered {header}"
                )

    def execute_job(self, request: JobRequest) -> JobReport:
        # Everything up to _sync_job_header is pre-wire validation: it sees
        # only deterministic inputs, so a rejection here is job-scoped
        # (JobValidationError) — both parties reject identically, no frame
        # has been sent, and the persistent session stays usable.
        try:
            entry = self._entry(request.model, request.batch_size)
        except KeyError as exc:
            raise JobValidationError(str(exc)) from exc
        if tuple(np.asarray(request.input_share).shape) != entry.plan.input_shape:
            raise JobValidationError(
                f"plan {request.model!r} (batch {request.batch_size}) expects "
                f"an input share of shape {entry.plan.input_shape}, got "
                f"{np.asarray(request.input_share).shape}"
            )
        derived = derive_job_seed(
            self.config.base_seed, request.model, request.batch_size, request.counter
        )
        seed = derived if request.seed is None else int(request.seed)
        self._sync_job_header(request)
        if seed == derived:
            pool, hit = self._acquire_pool(
                entry, request.model, request.batch_size, request.counter
            )
        else:
            # A replay pinned to another shard generation's seed: the
            # buffered pools of this server (keyed by counter under *its*
            # base seed) don't apply — obtain the exact pool at the pinned
            # seed (factory inventory or local cold generation; both yield
            # the identical dealer stream bit-for-bit).
            pool = self._pool_at_seed(entry, seed)
            hit = False
            with self._lock:
                self.stats.pool_misses += 1
                entry.next_counter = max(entry.next_counter, request.counter + 1)
        start = time.perf_counter()
        ctx = TwoPartyContext(ring=self.ring, seed=seed, channel=self.channel)
        before = self.transport.stats.snapshot()
        self.current_job_id = request.job_id
        try:
            execution = execute_plan_as_party(
                ctx,
                self.party,
                entry.plan,
                self.config.weights[request.model],
                request.input_share,
                pool=pool,
            )
        finally:
            self.current_job_id = None
        delta = self.transport.stats.since(before)
        online_seconds = time.perf_counter() - start

        if self.config.verify:
            # the one-shot runtime's verifier, fed with this job's wire
            # delta — the control frames of the session layer are excluded
            # from the payload counters, so the check stays exact even on a
            # connection multiplexing many jobs
            try:
                verify_against_plan(entry.plan, execution, delta)
            except RuntimeError as exc:
                raise RuntimeError(f"job {request.job_id}: {exc}") from exc

        with self._lock:
            self.stats.jobs_executed += 1
            self.stats.online_seconds += online_seconds
            self.stats.cpu_time_ns += execution.cpu_time_ns
            self.stats.fused_kernel_calls += execution.fused_kernel_calls
            buffered = len(entry.pools)
        self.notify_provisioner()
        return JobReport(
            job_id=request.job_id,
            party=self.party,
            logit_share=execution.logit_share,
            communication_bytes=execution.communication_bytes,
            communication_rounds=execution.communication_rounds,
            payload_bytes_sent=delta.payload_bytes_sent,
            payload_bytes_received=delta.payload_bytes_received,
            online_seconds=online_seconds,
            pool_hit=hit,
            pool_buffered=buffered,
            seed=seed,
            pid=os.getpid(),
            unpacked_payload_bytes=execution.unpacked_bytes,
            cpu_time_ns=execution.cpu_time_ns,
            fused_kernel_calls=execution.fused_kernel_calls,
        )

    # -- lifecycle ------------------------------------------------------------ #
    def warm_up(self) -> None:
        """Compile plans and buffer pools for the configured warm keys."""
        for model in self.config.models:
            for batch_size in self.config.warm_batch_sizes:
                self._entry(model, batch_size)
                if self.config.provision_pools > 0:
                    self.provision(model, batch_size, self.config.provision_pools)

    def shutdown(self) -> ServerStats:
        """Graceful end of session: wire handshake, stop the provisioner."""
        with self._refill:
            self._closing = True
            self._refill.notify_all()
        if self._provisioner is not None:
            self._provisioner.join(timeout=10.0)
        if self._factory is not None:
            try:
                self._factory.close()
            except Exception:
                pass
            self._factory = None
        if self.party == 0:
            self.transport.send_shutdown()
        else:
            goodbye = self.transport.recv_control()
            if goodbye is not None:
                raise RuntimeError(
                    "party 1: expected the shutdown handshake, got a control "
                    f"message of {len(goodbye)} bytes"
                )
        wire = self.transport.stats
        self.stats.control_bytes_sent = wire.control_bytes_sent
        self.stats.control_bytes_received = wire.control_bytes_received
        self.stats.payload_bytes_sent = wire.payload_bytes_sent
        self.stats.payload_bytes_received = wire.payload_bytes_received
        return self.stats


class _PipeSender:
    """Serializes control-pipe sends between the serving loop and the
    heartbeat thread (``multiprocessing.Connection`` is not re-entrant)."""

    def __init__(self, conn) -> None:
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, message) -> None:
        with self._lock:
            self._conn.send(message)


def _start_heartbeat_thread(
    sender: _PipeSender, server: "PartyServer", interval: float
) -> threading.Event:
    """Emit :class:`Heartbeat` frames over the pipe until the event is set.

    Runs as a daemon thread beside the serving loop, so liveness frames
    keep flowing while a job computes or blocks on the inter-party wire —
    a wedged (but scheduled) process keeps heartbeating; a SIGSTOPped or
    dead one goes silent, which is exactly the signal the supervisor needs.
    """
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(interval):
            try:
                sender.send(
                    Heartbeat(
                        party=server.party,
                        pid=os.getpid(),
                        timestamp=time.time(),
                        jobs_executed=server.stats.jobs_executed,
                        job_id=server.current_job_id,
                        round_index=server.transport.stats.round_frames_sent,
                    )
                )
            except (BrokenPipeError, OSError, ValueError):
                return  # driver went away; the serving loop will notice too

    thread = threading.Thread(
        target=_beat, name=f"party{server.party}-heartbeat", daemon=True
    )
    thread.start()
    return stop


def run_party_server(
    conn,
    party: int,
    host: str,
    port: int,
    timeout: float = 300.0,
    link_latency: float = 0.0,
) -> None:
    """Entry point for one persistent party process.

    Protocol over the control pipe: first a :class:`ServerConfig`, then any
    stream of :class:`JobRequest` / :class:`ProvisionRequest` messages, each
    answered in order; finally a :class:`ShutdownRequest`, answered with the
    lifetime :class:`ServerStats`.  The inter-party transport is opened once
    and reused for every job — a warm server spawns no processes and opens
    no connections on the serving path.

    With ``port <= 0`` party 0 binds an ephemeral port and announces the
    kernel-assigned number over the pipe (``("bound-port", port)``) right
    after receiving the config, *before* accepting — the pool driver reads
    it and only then boots party 1, so no free-then-bind race exists.
    """
    transport = None
    sender = _PipeSender(conn)
    heartbeat_stop: Optional[threading.Event] = None
    try:
        config: ServerConfig = conn.recv()
        listener = None
        if party == 0 and port <= 0:
            listener = TcpListener(host=host, port=0)
            sender.send(("bound-port", listener.port))
            port = listener.port
        endpoint = TransportEndpoint(
            party=party,
            host=host,
            port=port,
            timeout=timeout,
            link_latency=link_latency,
            listener=listener,
        )
        transport = endpoint.open()
        plan = (getattr(config, "fault_plans", None) or {}).get(party)
        if plan is not None:
            # chaos/shaping harness: the wrapper owns the WireStats the
            # server accounts against, so payload==manifest stays exact
            transport = FaultyTransport(transport, plan)
        server = PartyServer(party, transport, config)
        server.warm_up()
        server.start_provisioner()
        sender.send("ready")
        interval = getattr(config, "heartbeat_interval", 0.0) or 0.0
        if interval > 0:
            heartbeat_stop = _start_heartbeat_thread(sender, server, interval)
        while True:
            message = conn.recv()
            if isinstance(message, ShutdownRequest):
                sender.send(server.shutdown())
                break
            if isinstance(message, ProvisionRequest):
                start = time.perf_counter()
                buffered = server.provision(
                    message.model, message.batch_size, message.count
                )
                sender.send(
                    ProvisionReport(
                        model=message.model,
                        batch_size=message.batch_size,
                        buffered=buffered,
                        provision_seconds=time.perf_counter() - start,
                        pools_from_factory=server.stats.pools_from_factory,
                        factory_fallbacks=server.stats.factory_fallbacks,
                        factory_inventory_depth=server.stats.factory_inventory_depth,
                    )
                )
            elif isinstance(message, JobRequest):
                try:
                    sender.send(server.execute_job(message))
                except JobValidationError as exc:
                    # rejected pre-wire on both parties: answer and keep
                    # serving — only post-wire failures are process-fatal
                    sender.send(JobFailed(job_id=message.job_id, error=str(exc)))
            else:
                raise TypeError(
                    f"party {party}: unexpected control message "
                    f"{type(message).__name__}"
                )
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception as exc:  # surface the failure to the driver, then re-raise
        try:
            sender.send(exc)
        except Exception:
            pass
        raise
    finally:
        if heartbeat_stop is not None:
            heartbeat_stop.set()
        if transport is not None:
            transport.close()
        conn.close()
