"""One computing party of the networked 2PC runtime.

The paper deploys a searched network on *two physically separate* computing
parties.  This module is the per-party half of that deployment: a worker
that holds exactly one share-world (its input share, its half of the
correlated randomness) and jointly executes a compiled
:class:`~repro.crypto.plan.InferencePlan` with the peer over a
:class:`~repro.crypto.transport.Transport`.

How one program serves both parties
-----------------------------------

Every protocol in :mod:`repro.crypto.protocols` is written in SPMD form:
expressions that produce party-*i* values read only party-*i* inputs plus
values opened on the channel.  A party process therefore runs the *same*
program as the single-process simulation, with:

- its own share-world genuine and the other world zero-filled (the other
  world's expressions compute garbage that is never consumed and never put
  on the wire);
- a :class:`~repro.crypto.channel.PartyChannel`, so every opened value is
  recombined from the share that genuinely crossed the transport;
- a :class:`~repro.crypto.dealer.RandomnessPool` regenerated from the shared
  session seed and then restricted to this party's world
  (:meth:`~repro.crypto.dealer.RandomnessPool.restrict_to_party`).

Because the randomness streams and openings are identical to the
single-process compiled path, the reconstructed logits are bit-identical to
it — and the measured on-wire payload bytes equal the manifest prediction,
which :func:`verify_against_plan` asserts after every run.

Invariants (relied on by the persistent server and the serving pool):

1. **one share-world per process** — a party process never holds, receives
   or derives the peer's genuine shares; the other world's lanes of the
   SPMD program carry zero-filled garbage that is never consumed and never
   put on the wire (``RandomnessPool.restrict_to_party`` enforces this for
   the dealer material);
2. **canonical-order exchange** — party 0 sends first, party 1 receives
   first, and both parties log the full conversation in that order, so the
   two logs are identical to each other and to the simulated channel's,
   and the transport needs no concurrent send/receive to be deadlock-free;
3. **payload == manifest** — after every execution, logged bytes, logged
   rounds and per-direction on-wire payload bytes must equal the compiled
   plan's static prediction exactly; a deviation is an error, not a
   warning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.crypto.channel import PartyChannel
from repro.crypto.context import TwoPartyContext
from repro.crypto.dealer import RandomnessPool, TrustedDealer
from repro.crypto.events import bytes_saved_pct as _bytes_saved_pct
from repro.crypto.passes import ScheduledPlan, optimize_plan
from repro.crypto.plan import InferencePlan, compile_plan
from repro.crypto.protocols.registry import get_handler
from repro.crypto.ring import DEFAULT_RING, FixedPointRing
from repro.crypto.scheduler import run_scheduled_plan
from repro.crypto.sharing import SharePair
from repro.crypto.transport import TcpListener, TransportEndpoint, WireStats
from repro.models.specs import ModelSpec


@dataclass
class PartyJob:
    """Everything one party needs to join a two-process inference session.

    ``optimize=True`` (the default) runs the optimizer pass pipeline after
    compilation and executes the round-coalescing schedule; both parties
    must agree on the flag (it is part of the job, so they do).
    """

    spec: ModelSpec
    weights: Dict[str, Dict[str, np.ndarray]]
    batch_size: int
    seed: int
    input_share: np.ndarray
    ring: FixedPointRing = DEFAULT_RING
    optimize: bool = True
    #: bind the optimized schedule to fused local-compute kernels
    #: (:func:`repro.crypto.passes.lower_plan`); logits stay bit-identical
    lower: bool = True


@dataclass
class PartyExecution:
    """Outcome of one plan execution from a single party's perspective."""

    party: int
    logit_share: np.ndarray
    communication_bytes: int
    communication_rounds: int
    per_layer_bytes: Dict[str, int] = field(default_factory=dict)
    #: frame-format-v1 equivalent of ``communication_bytes`` (no sub-byte
    #: packing) — the denominator of the ``bytes_saved`` serving stats
    unpacked_bytes: int = 0
    #: local-compute time of the online phase (wire waits excluded)
    cpu_time_ns: int = 0
    #: per-op attribution of ``cpu_time_ns``
    per_op_cpu_ns: Dict[str, int] = field(default_factory=dict)
    #: fused-kernel invocations (0 on the un-lowered path)
    fused_kernel_calls: int = 0


@dataclass
class PartyReport:
    """What a party worker sends back to the driver after a session."""

    party: int
    logit_share: np.ndarray
    communication_bytes: int
    communication_rounds: int
    per_layer_bytes: Dict[str, int]
    payload_bytes_sent: int
    payload_bytes_received: int
    wire_bytes_sent: int
    wire_bytes_received: int
    frames_sent: int
    offline_seconds: float
    online_seconds: float
    pool_served: int
    #: unpacked (frame format v1) equivalent of ``communication_bytes``
    unpacked_payload_bytes: int = 0
    #: local-compute time of the online phase (wire waits excluded)
    cpu_time_ns: int = 0
    #: fused-kernel invocations of the session (0 on the un-lowered path)
    fused_kernel_calls: int = 0

    @property
    def bytes_saved_pct(self) -> float:
        """Percent of payload the packed wire format saved this session."""
        return _bytes_saved_pct(self.communication_bytes, self.unpacked_payload_bytes)


def predicted_direction_bytes(plan, sender: int) -> int:
    """Manifest-predicted online payload bytes flowing out of ``sender``."""
    return sum(
        num_bytes
        for op in plan.ops
        for msg_sender, num_bytes in op.messages
        if msg_sender == sender
    )


def predicted_rounds(plan) -> int:
    """The round count executing ``plan`` must log.

    A :class:`~repro.crypto.passes.ScheduledPlan` executes coalesced, so its
    scheduled count applies; a bare :class:`InferencePlan` executes
    sequentially and must match the legacy trace-derived count.
    """
    if isinstance(plan, ScheduledPlan):
        return plan.online_rounds
    return plan.legacy_online_rounds


def verify_against_plan(
    plan, execution: PartyExecution, stats: WireStats
) -> None:
    """Assert the measured traffic equals the plan's static prediction.

    ``plan`` is the executed artifact — an :class:`InferencePlan` for the
    sequential path or a :class:`~repro.crypto.passes.ScheduledPlan` for the
    round-coalescing path; byte predictions are identical, round predictions
    are mode-specific (see :func:`predicted_rounds`).  Checks three layers
    of accounting against the manifest: the party's communication log (both
    directions), the payload bytes its transport actually serialized onto
    the wire, and the payload bytes it received.
    """
    party = execution.party
    checks = [
        ("logged online bytes", execution.communication_bytes, plan.online_bytes),
        ("logged online rounds", execution.communication_rounds, predicted_rounds(plan)),
        (
            "on-wire payload bytes sent",
            stats.payload_bytes_sent,
            predicted_direction_bytes(plan, party),
        ),
        (
            "on-wire payload bytes received",
            stats.payload_bytes_received,
            predicted_direction_bytes(plan, 1 - party),
        ),
    ]
    for name, measured, predicted in checks:
        if measured != predicted:
            raise RuntimeError(
                f"party {party}: {name} = {measured} does not match the "
                f"manifest prediction {predicted} for plan "
                f"{plan.model_name!r} (batch {plan.batch_size})"
            )


def execute_plan_as_party(
    ctx: TwoPartyContext,
    party: int,
    plan,
    weights: Dict[str, Dict[str, np.ndarray]],
    input_share: np.ndarray,
    pool: Optional[RandomnessPool] = None,
) -> PartyExecution:
    """Run the online phase of ``plan`` holding only ``party``'s share-world.

    ``plan`` is either a bare :class:`InferencePlan` (sequential reference
    execution) or a :class:`~repro.crypto.passes.ScheduledPlan`
    (round-coalescing execution over multi-tensor round frames) — the
    reconstructed logits are bit-identical either way.

    ``ctx.channel`` must be a :class:`PartyChannel` for the same party (or a
    simulated channel in tests).  ``input_share`` is this party's additive
    share of the encoded query batch; the peer holds the complementary one.
    One RNG draw of the input shape is burned first to keep ``ctx.rng``
    aligned with the reference stream of the single-process path (which
    draws the sharing mask from the same generator).
    """
    input_share = np.asarray(input_share, dtype=np.uint64)
    if tuple(input_share.shape) != plan.input_shape:
        raise ValueError(
            f"plan expects input share of shape {plan.input_shape}, "
            f"got {input_share.shape}"
        )
    if pool is None:
        pool = ctx.dealer.preprocess(plan)

    ring = ctx.ring
    ring.random(plan.input_shape, ctx.rng)  # burn the sharing-mask draw
    zeros = np.zeros(plan.input_shape, dtype=np.uint64)
    if party == 0:
        shared = SharePair(input_share, zeros, ring)
    else:
        shared = SharePair(zeros, input_share, ring)

    dealer = ctx.dealer
    ctx.dealer = pool
    profile: Dict[str, object] = {}
    try:
        ctx.reset_communication()
        cache: Dict[str, SharePair] = {}
        if isinstance(plan, ScheduledPlan):
            shared, per_layer = run_scheduled_plan(
                ctx, plan, weights, shared, cache, profile=profile
            )
        else:
            per_layer = {}
            per_op_cpu: Dict[str, int] = {}
            clock = time.perf_counter_ns
            for op in plan.ops:
                before = ctx.communication_bytes
                handler = get_handler(op.kind)
                started = clock()
                shared = handler.execute(
                    ctx, op.layer, weights.get(op.name, {}), shared, cache
                )
                per_op_cpu[op.name] = clock() - started
                cache[op.name] = shared
                per_layer[op.name] = ctx.communication_bytes - before
            profile = {
                "per_op_cpu_ns": per_op_cpu,
                "cpu_time_ns": sum(per_op_cpu.values()),
                "fused_kernel_calls": 0,
            }
        logit_share = shared.share0 if party == 0 else shared.share1
    finally:
        ctx.dealer = dealer

    return PartyExecution(
        party=party,
        logit_share=logit_share,
        communication_bytes=ctx.communication_bytes,
        communication_rounds=ctx.communication_rounds,
        per_layer_bytes=per_layer,
        unpacked_bytes=ctx.channel.log.total_unpacked_bytes,
        cpu_time_ns=int(profile.get("cpu_time_ns", 0)),
        per_op_cpu_ns=dict(profile.get("per_op_cpu_ns", {})),
        fused_kernel_calls=int(profile.get("fused_kernel_calls", 0)),
    )


def run_party_session(
    job: PartyJob, endpoint: TransportEndpoint, verify: bool = True
) -> PartyReport:
    """Execute one inference session as the party given by ``endpoint``.

    Establishes the inter-party connection, deterministically regenerates
    the offline randomness from the shared session seed, restricts it to
    this party's share-world, runs the online phase and (by default)
    verifies the measured traffic against the plan manifest.
    """
    party = endpoint.party
    transport = endpoint.open()
    try:
        channel = PartyChannel(transport, party, ring=job.ring)
        ctx = TwoPartyContext(ring=job.ring, seed=job.seed, channel=channel)

        offline_start = time.perf_counter()
        plan = compile_plan(job.spec, batch_size=job.batch_size, ring=job.ring)
        if job.optimize:
            plan = optimize_plan(plan, lower=getattr(job, "lower", True))
        dealer = TrustedDealer(ring=job.ring, seed=job.seed)
        pool = dealer.preprocess(plan).restrict_to_party(party)
        offline_seconds = time.perf_counter() - offline_start

        online_start = time.perf_counter()
        execution = execute_plan_as_party(
            ctx, party, plan, job.weights, job.input_share, pool=pool
        )
        online_seconds = time.perf_counter() - online_start

        if verify:
            verify_against_plan(plan, execution, transport.stats)
        return PartyReport(
            party=party,
            logit_share=execution.logit_share,
            communication_bytes=execution.communication_bytes,
            communication_rounds=execution.communication_rounds,
            per_layer_bytes=execution.per_layer_bytes,
            payload_bytes_sent=transport.stats.payload_bytes_sent,
            payload_bytes_received=transport.stats.payload_bytes_received,
            wire_bytes_sent=transport.stats.wire_bytes_sent,
            wire_bytes_received=transport.stats.wire_bytes_received,
            frames_sent=transport.stats.frames_sent,
            offline_seconds=offline_seconds,
            online_seconds=online_seconds,
            pool_served=pool.served,
            unpacked_payload_bytes=execution.unpacked_bytes,
            cpu_time_ns=execution.cpu_time_ns,
            fused_kernel_calls=execution.fused_kernel_calls,
        )
    finally:
        transport.close()


def run_party_worker(conn, party: int, host: str, port: int, timeout: float = 120.0) -> None:
    """Entry point for one party OS process (``multiprocessing.Process``).

    Receives a :class:`PartyJob` over the driver's control pipe (the stand-in
    for the client/dealer provisioning path — *not* part of the measured
    inter-server traffic), runs the session over TCP, and sends back either a
    :class:`PartyReport` or the exception that ended the session.

    With ``port <= 0`` party 0 binds an ephemeral port itself and announces
    the kernel-assigned port over the pipe (``("bound-port", port)``) before
    accepting — the driver forwards it to party 1, so no free-then-bind race
    exists end to end.
    """
    try:
        job: PartyJob = conn.recv()
        listener = None
        if party == 0 and port <= 0:
            listener = TcpListener(host=host, port=0)
            conn.send(("bound-port", listener.port))
            port = listener.port
        endpoint = TransportEndpoint(
            party=party, host=host, port=port, timeout=timeout, listener=listener
        )
        report = run_party_session(job, endpoint)
        conn.send(report)
    except Exception as exc:  # surface the failure to the driver, then re-raise
        try:
            conn.send(exc)
        except Exception:
            pass
        raise
    finally:
        conn.close()
