"""Driver for two-OS-process private inference over localhost TCP.

:func:`run_two_process_inference` plays the roles the paper keeps off the
measured path — the client (secret-sharing the query, reconstructing the
logits from the parties' result shares) and the session coordinator — while
the two spawned party processes execute the compiled plan jointly over a
real socket.  The driver cross-checks both parties' measured traffic against
the plan manifest and against each other, and verifies that the socket path
reproduces the single-process compiled path bit for bit.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.crypto.events import bytes_saved_pct as _bytes_saved_pct
from repro.crypto.passes import optimize_plan
from repro.crypto.plan import compile_plan
from repro.crypto.ring import DEFAULT_RING, FixedPointRing
from repro.crypto.sharing import share
from repro.models.specs import ModelSpec
from repro.runtime.party import PartyJob, PartyReport, run_party_worker


@dataclass
class TwoProcessResult:
    """Reconstructed output and verified accounting of one socket session.

    ``plan`` is the artifact the parties executed: a
    :class:`~repro.crypto.passes.ScheduledPlan` by default, or the bare
    :class:`~repro.crypto.plan.InferencePlan` when ``optimize=False``.
    """

    logits: np.ndarray
    plan: object
    reports: Dict[int, PartyReport]
    wall_seconds: float

    @property
    def online_bytes(self) -> int:
        return self.reports[0].communication_bytes

    @property
    def online_rounds(self) -> int:
        return self.reports[0].communication_rounds

    @property
    def payload_bytes_on_wire(self) -> int:
        """Array payload bytes that crossed the socket (both directions)."""
        return (
            self.reports[0].payload_bytes_sent + self.reports[1].payload_bytes_sent
        )

    @property
    def wire_bytes_on_wire(self) -> int:
        """Total socket bytes including framing (length prefixes + headers)."""
        return self.reports[0].wire_bytes_sent + self.reports[1].wire_bytes_sent

    @property
    def framing_overhead_bytes(self) -> int:
        return self.wire_bytes_on_wire - self.payload_bytes_on_wire

    @property
    def unpacked_payload_bytes(self) -> int:
        """Frame-format-v1 equivalent of the payload (no sub-byte packing)."""
        return self.reports[0].unpacked_payload_bytes

    @property
    def bytes_saved_pct(self) -> float:
        """Percent of payload the packed wire format saved this session."""
        return _bytes_saved_pct(
            self.payload_bytes_on_wire, self.unpacked_payload_bytes
        )

    @property
    def cpu_time_ns(self) -> int:
        """Local-compute time of the online phase (slower party; the two
        parties run concurrently, so their max is the session's)."""
        return max(self.reports[p].cpu_time_ns for p in (0, 1))

    @property
    def fused_kernel_calls(self) -> int:
        """Fused-kernel invocations per party (identical on both sides)."""
        return self.reports[0].fused_kernel_calls

    @property
    def matches_manifest(self) -> bool:
        return self.payload_bytes_on_wire == self.plan.online_bytes


def _check_cross_party_consistency(
    plan, report0: PartyReport, report1: PartyReport
) -> None:
    """Both parties observed the same conversation, and it matches the plan."""
    if report0.payload_bytes_sent != report1.payload_bytes_received:
        raise RuntimeError(
            f"wire asymmetry: party 0 sent {report0.payload_bytes_sent} payload "
            f"bytes but party 1 received {report1.payload_bytes_received}"
        )
    if report1.payload_bytes_sent != report0.payload_bytes_received:
        raise RuntimeError(
            f"wire asymmetry: party 1 sent {report1.payload_bytes_sent} payload "
            f"bytes but party 0 received {report0.payload_bytes_received}"
        )
    for report in (report0, report1):
        if report.communication_bytes != plan.online_bytes:
            raise RuntimeError(
                f"party {report.party} logged {report.communication_bytes} online "
                f"bytes; the manifest predicts {plan.online_bytes}"
            )
        if report.per_layer_bytes != plan.per_op_bytes():
            raise RuntimeError(
                f"party {report.party}: per-layer byte log diverges from the plan"
            )


def run_two_process_inference(
    spec: ModelSpec,
    weights: Dict[str, Dict[str, np.ndarray]],
    inputs: np.ndarray,
    seed: int = 0,
    ring: Optional[FixedPointRing] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    timeout: float = 300.0,
    optimize: bool = True,
    lower: bool = True,
) -> TwoProcessResult:
    """Run one private inference with the two parties in separate OS processes.

    The client-side flow: encode and secret-share ``inputs`` (with the same
    RNG stream the single-process engine would use, so the session is
    bit-identical to ``SecureInferenceEngine.execute`` at the same seed),
    hand each party its share-world, let them execute the compiled plan over
    a localhost socket, then reconstruct the logits from the returned result
    shares.  Raises if either party's measured traffic deviates from the
    plan manifest.

    Ports: with ``port=None`` (the default) party 0 binds an ephemeral port
    and announces the kernel-assigned number over its control pipe before
    party 1 is spawned — end-to-end race-free, so parallel CI jobs cannot
    collide.  ``optimize`` selects the round-coalescing schedule (default)
    or the sequential reference execution; ``lower`` additionally binds the
    schedule to the fused local-compute kernels (bit-identical logits, less
    CPU per op) and only applies when ``optimize`` is on.
    """
    ring = ring or DEFAULT_RING
    inputs = np.asarray(inputs, dtype=np.float64)
    batch_size = int(inputs.shape[0])
    ephemeral = port is None
    port = 0 if ephemeral else port

    # Client: secret-share the query batch.  The RNG seed convention matches
    # TwoPartyContext (rng = seed + 1) so the mask equals the reference run's.
    client_rng = np.random.default_rng(seed + 1)
    shared = share(inputs, ring, client_rng)

    start = time.perf_counter()
    pipes = []
    processes = []
    try:
        for party, input_share in ((0, shared.share0), (1, shared.share1)):
            parent_conn, child_conn = mp.Pipe()
            process = mp.Process(
                target=run_party_worker,
                args=(child_conn, party, host, port),
                kwargs={"timeout": timeout},
                name=f"2pc-party-{party}",
            )
            process.start()
            child_conn.close()
            parent_conn.send(
                PartyJob(
                    spec=spec,
                    weights=weights,
                    batch_size=batch_size,
                    seed=seed,
                    input_share=input_share,
                    ring=ring,
                    optimize=optimize,
                    lower=lower,
                )
            )
            pipes.append(parent_conn)
            processes.append(process)
            if party == 0 and ephemeral:
                # wait for party 0's kernel-assigned port: the listener is
                # already bound, so handing the number to party 1 is race-free
                if not parent_conn.poll(timeout):
                    raise TimeoutError(
                        f"party 0 did not announce its bound port within {timeout:.0f}s"
                    )
                announcement = parent_conn.recv()
                if isinstance(announcement, BaseException):
                    raise RuntimeError(f"party 0 failed: {announcement}") from announcement
                kind, bound_port = announcement
                if kind != "bound-port":
                    raise RuntimeError(
                        f"party 0 announced {announcement!r}, expected a bound port"
                    )
                port = int(bound_port)

        reports: Dict[int, PartyReport] = {}
        deadline = time.monotonic() + timeout
        for party, conn in enumerate(pipes):
            remaining = max(deadline - time.monotonic(), 0.0)
            if not conn.poll(remaining):
                raise TimeoutError(
                    f"party {party} did not report within {timeout:.0f}s"
                )
            message = conn.recv()
            if isinstance(message, BaseException):
                raise RuntimeError(f"party {party} failed: {message}") from message
            reports[party] = message
        for process in processes:
            process.join(timeout=30.0)
    finally:
        for conn in pipes:
            conn.close()
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=10.0)
    wall_seconds = time.perf_counter() - start

    plan = compile_plan(spec, batch_size=batch_size, ring=ring)
    if optimize:
        plan = optimize_plan(plan, lower=lower)
    _check_cross_party_consistency(plan, reports[0], reports[1])

    # Client: reconstruct the logits from the two result shares.
    logits = ring.decode(ring.add(reports[0].logit_share, reports[1].logit_share))
    return TwoProcessResult(
        logits=logits, plan=plan, reports=reports, wall_seconds=wall_seconds
    )
