"""Batching request frontend for the secure-inference runtime.

Clients submit single queries; a dispatcher thread coalesces queued queries
for the same model up to ``max_batch`` (or until the oldest waiting query
has waited ``max_wait`` seconds), stacks them into one batch, and runs a
single plan execution against a cached plan + pre-provisioned randomness
pool.  Each query resolves to its own :class:`ServedResult` future.

Batching is the amortization lever of the plan runtime (one communication
round trip per protocol op regardless of batch size), so throughput scales
with the coalesced batch size while per-query latency only pays the small
coalescing wait — :mod:`benchmarks.bench_serving_throughput` measures both.

Execution is pluggable: coalescing, future bookkeeping and statistics live
here, while the two overridable hooks :meth:`BatchingFrontend._dispatch_batch`
(where a coalesced batch runs: inline by default, handed to a shard pool by
:mod:`repro.serve.pool`) and :meth:`BatchingFrontend._run_batch` (how it
runs: the in-process engine by default, a persistent worker pair in the
pool) let backends swap in without touching the queueing logic.

Invariants:

- every submitted query resolves exactly once — with a
  :class:`ServedResult` or with the exception that killed its batch; a
  backend failure never wedges a client future;
- a query accepted by :meth:`BatchingFrontend.submit` is dispatched even if
  :meth:`BatchingFrontend.close` races with it (the closed check and the
  enqueue are atomic w.r.t. the shutdown drain);
- statistics are updated under one lock and are safe against concurrent
  batch completions from asynchronous backends.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.crypto.context import make_context
from repro.crypto.ring import FixedPointRing
from repro.crypto.secure_model import SecureInferenceEngine
from repro.serve.cache import PlanPoolCache, ServableModel


@dataclass
class ServedResult:
    """What one client query resolves to."""

    logits: np.ndarray
    predicted_class: int
    model: str
    batch_size: int
    latency_seconds: float
    online_bytes_per_query: float
    #: which worker shard executed the batch (None on the in-process backend)
    shard: Optional[int] = None
    #: session seed of the executing job — replaying the in-process engine at
    #: this seed reproduces the logits bit for bit (None on the in-process
    #: backend, whose engine seed is fixed at construction)
    job_seed: Optional[int] = None


@dataclass
class BatchOutcome:
    """What one backend execution of a coalesced batch returns."""

    logits: np.ndarray
    online_bytes_per_query: float
    shard: Optional[int] = None
    job_seed: Optional[int] = None


class PoolShutdown(RuntimeError):
    """The serving stack shut down while this query was still pending.

    Raised into client futures that would otherwise hang when shards die
    during a drain (or the pool closes mid-flight).  Carries enough to
    diagnose *where* the query was stuck: its position among the queries
    abandoned by the same shutdown and how long it had been waiting.
    """

    def __init__(
        self,
        message: str,
        queue_position: int = -1,
        elapsed_seconds: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.queue_position = queue_position
        self.elapsed_seconds = elapsed_seconds


#: latency samples kept for percentile computation (a sliding window, so a
#: long-lived frontend under heavy traffic stays O(1) in memory)
LATENCY_WINDOW = 100_000


@dataclass
class ServingStats:
    """Aggregate counters and latency percentiles of a frontend's lifetime.

    Percentiles are computed over the most recent :data:`LATENCY_WINDOW`
    completed queries; the counters cover the whole lifetime.
    """

    queries_completed: int = 0
    queries_failed: int = 0
    batches_dispatched: int = 0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)
    latencies_seconds: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )
    first_submit: Optional[float] = None
    last_complete: Optional[float] = None

    @property
    def mean_batch_size(self) -> float:
        if not self.batches_dispatched:
            return 0.0
        return self.queries_completed / self.batches_dispatched

    def latency_percentile_ms(self, percentile: float) -> float:
        if not self.latencies_seconds:
            return 0.0
        return 1e3 * float(np.percentile(self.latencies_seconds, percentile))

    @property
    def queries_per_second(self) -> float:
        if (
            self.first_submit is None
            or self.last_complete is None
            or self.last_complete <= self.first_submit
        ):
            return 0.0
        return self.queries_completed / (self.last_complete - self.first_submit)

    def snapshot(self) -> Dict[str, object]:
        return {
            "queries_completed": self.queries_completed,
            "queries_failed": self.queries_failed,
            "batches_dispatched": self.batches_dispatched,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": dict(sorted(self.batch_size_histogram.items())),
            "p50_latency_ms": self.latency_percentile_ms(50),
            "p95_latency_ms": self.latency_percentile_ms(95),
            "queries_per_second": self.queries_per_second,
        }


@dataclass
class _PendingQuery:
    model: str
    query: np.ndarray
    future: "Future[ServedResult]"
    submitted_at: float


class BatchingFrontend:
    """Coalescing request queue in front of the compiled-plan engine.

    Args:
        models: the deployable model zoo, keyed by the name clients use.
        max_batch: hard cap on queries coalesced into one plan execution.
        max_wait: seconds the oldest queued query may wait before its batch
            is dispatched even if not full — the latency/throughput knob.
        provision_pools: pools to pre-generate per model at ``max_batch``
            (and at batch size 1) during startup, off the serving path.
        seed: session seed for the serving context and dealer.
        ring: fixed-point ring of the deployment.
    """

    def __init__(
        self,
        models: Dict[str, ServableModel],
        max_batch: int = 8,
        max_wait: float = 0.01,
        provision_pools: int = 0,
        seed: int = 0,
        ring: Optional[FixedPointRing] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.models = dict(models)
        self.max_batch = max_batch
        self.max_wait = max_wait
        # Engine and cache are built on first use: a subclass that overrides
        # _run_batch with a remote backend (the shard pool) never constructs
        # the in-process engine/dealer at all.
        self._ring = ring
        self._seed = seed
        self._engine: Optional[SecureInferenceEngine] = None
        self._cache: Optional[PlanPoolCache] = None
        self.stats = ServingStats()
        self._queue: "Queue[Optional[_PendingQuery]]" = Queue()
        self._stats_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()
        # Every accepted query lives here until its future resolves, so
        # close() can fail stragglers promptly instead of leaving them to
        # hang when shards die during the drain.
        self._inflight: Dict[int, _PendingQuery] = {}
        self._inflight_lock = threading.Lock()
        self._closed = False
        if provision_pools:
            for servable in self.models.values():
                self.cache.provision(servable.spec, self.max_batch, provision_pools)
                self.cache.provision(servable.spec, 1, provision_pools)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    @property
    def engine(self) -> SecureInferenceEngine:
        """The in-process execution engine (built on first use)."""
        if self._engine is None:
            self._engine = SecureInferenceEngine(
                make_context(ring=self._ring, seed=self._seed)
            )
        return self._engine

    @property
    def cache(self) -> PlanPoolCache:
        """The plan/pool cache of the in-process backend (built on first use)."""
        if self._cache is None:
            self._cache = PlanPoolCache(ring=self.engine.ctx.ring, seed=self._seed + 1)
        return self._cache

    def stats_snapshot(self) -> Dict[str, object]:
        """A consistent copy of the serving stats (safe against concurrent
        batch completions from asynchronous backends)."""
        with self._stats_lock:
            return self.stats.snapshot()

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def submit(self, model: str, query: np.ndarray) -> "Future[ServedResult]":
        """Enqueue one query (CHW, no batch dimension); returns a future."""
        if self._closed:
            raise RuntimeError("frontend is closed")
        servable = self.models.get(model)
        if servable is None:
            raise KeyError(
                f"unknown model {model!r}; deployed: {sorted(self.models)}"
            )
        query = np.asarray(query, dtype=np.float64)
        spec = servable.spec
        expected = (spec.in_channels, spec.input_size, spec.input_size)
        if query.shape != expected:
            raise ValueError(
                f"model {model!r} expects a query of shape {expected}, "
                f"got {query.shape}"
            )
        now = time.perf_counter()
        with self._stats_lock:
            if self.stats.first_submit is None:
                self.stats.first_submit = now
        future: "Future[ServedResult]" = Future()
        item = _PendingQuery(model, query, future, now)
        # The closed check and the enqueue are atomic w.r.t. close(), so a
        # query can never land in the queue after the shutdown drain.
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("frontend is closed")
            with self._inflight_lock:
                self._inflight[id(item)] = item
            self._queue.put(item)
        return future

    def submit_many(
        self, model: str, queries: np.ndarray
    ) -> List["Future[ServedResult]"]:
        """Enqueue a stack of queries individually (they may be re-batched)."""
        return [self.submit(model, query) for query in np.asarray(queries)]

    def close(self, timeout: float = 30.0) -> None:
        """Drain the queue, stop the dispatcher and reject new submissions.

        Every future accepted before the close resolves — normally if the
        drain completes within ``timeout``, otherwise with a diagnosable
        :class:`PoolShutdown` (queue position + elapsed wait) rather than
        hanging forever on a backend that died mid-drain.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)  # shutdown sentinel, after the last query
        deadline = time.monotonic() + timeout
        self._dispatcher.join(timeout=timeout)
        # Batches handed off to an asynchronous backend may still be
        # executing legitimately; give the drain the rest of the budget,
        # then fail whatever is left promptly.
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if not self._inflight:
                    return
            time.sleep(0.02)
        self._fail_stragglers()

    def _fail_stragglers(self) -> None:
        with self._inflight_lock:
            stragglers = sorted(
                self._inflight.values(), key=lambda item: item.submitted_at
            )
            self._inflight.clear()
        now = time.perf_counter()
        failed = 0
        for position, item in enumerate(stragglers):
            elapsed = now - item.submitted_at
            failed += _resolve(
                item.future,
                exception=PoolShutdown(
                    f"frontend shut down with the query still pending "
                    f"(queue position {position}, waited {elapsed:.1f}s)",
                    queue_position=position,
                    elapsed_seconds=elapsed,
                ),
            )
        if failed:
            with self._stats_lock:
                self.stats.queries_failed += failed

    def __enter__(self) -> "BatchingFrontend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        pending: Dict[str, List[_PendingQuery]] = {}
        running = True
        while running or any(pending.values()):
            timeout = self._next_deadline_in(pending) if running else 0.0
            item: Optional[_PendingQuery] = None
            if running:
                try:
                    item = self._queue.get(timeout=max(timeout, 1e-4))
                except Empty:
                    item = None
                if item is None and not self._queue.empty():
                    continue
            if item is None and running and self._closed:
                running = False
            elif item is None and running:
                pass
            elif item is None:
                running = False
            else:
                pending.setdefault(item.model, []).append(item)
            if not running:
                # Shutdown: drain whatever is still queued, then flush all.
                while True:
                    try:
                        leftover = self._queue.get_nowait()
                    except Empty:
                        break
                    if leftover is not None:
                        pending.setdefault(leftover.model, []).append(leftover)
            self._flush_ready(pending, force=not running)

    def _next_deadline_in(self, pending: Dict[str, List[_PendingQuery]]) -> float:
        deadlines = [
            bucket[0].submitted_at + self.max_wait
            for bucket in pending.values()
            if bucket
        ]
        if not deadlines:
            return 0.05
        return max(min(deadlines) - time.perf_counter(), 0.0)

    def _flush_ready(
        self, pending: Dict[str, List[_PendingQuery]], force: bool
    ) -> None:
        now = time.perf_counter()
        for model, bucket in pending.items():
            while bucket and (
                force
                or len(bucket) >= self.max_batch
                or now - bucket[0].submitted_at >= self.max_wait
            ):
                batch = bucket[: self.max_batch]
                del bucket[: self.max_batch]
                self._dispatch_batch(model, batch)

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _dispatch_batch(self, model: str, batch: List[_PendingQuery]) -> None:
        """Where a coalesced batch runs.

        The default executes inline on the dispatcher thread; an
        asynchronous backend (the shard pool) overrides this to hand the
        batch off so coalescing continues while shards work.
        """
        self._execute_batch(model, batch)

    def _run_batch(
        self, model: str, servable: ServableModel, inputs: np.ndarray
    ) -> BatchOutcome:
        """How a coalesced batch runs: one plan execution on the backend.

        The default is the in-process compiled engine against the plan/pool
        cache; :class:`repro.serve.pool.ShardedServingPool` overrides this
        to route the batch to a persistent two-process worker pair.
        """
        batch_size = int(inputs.shape[0])
        plan = self.cache.plan(servable.spec, batch_size)
        pool = self.cache.acquire_pool(servable.spec, batch_size)
        result = self.engine.execute(plan, servable.weights, inputs, pool=pool)
        return BatchOutcome(
            logits=result.logits,
            online_bytes_per_query=result.online_bytes_per_query,
        )

    def _execute_batch(self, model: str, batch: List[_PendingQuery]) -> None:
        servable = self.models[model]
        batch_size = len(batch)
        try:
            inputs = np.stack([item.query for item in batch])
            outcome = self._run_batch(model, servable, inputs)
        except Exception as exc:
            with self._stats_lock:
                self.stats.queries_failed += len(batch)
            for position, item in enumerate(batch):
                err = exc
                if isinstance(exc, PoolShutdown) and exc.queue_position < 0:
                    # enrich the pool-level shutdown with this query's view
                    err = PoolShutdown(
                        str(exc),
                        queue_position=position,
                        elapsed_seconds=time.perf_counter() - item.submitted_at,
                    )
                _resolve(item.future, exception=err)
            self._forget(batch)
            return
        done = time.perf_counter()
        predictions = outcome.logits.argmax(axis=1)
        with self._stats_lock:
            self.stats.batches_dispatched += 1
            self.stats.queries_completed += batch_size
            self.stats.batch_size_histogram[batch_size] = (
                self.stats.batch_size_histogram.get(batch_size, 0) + 1
            )
            self.stats.last_complete = done
            for item in batch:
                self.stats.latencies_seconds.append(done - item.submitted_at)
        for row, item in enumerate(batch):
            _resolve(
                item.future,
                result=ServedResult(
                    logits=outcome.logits[row],
                    predicted_class=int(predictions[row]),
                    model=model,
                    batch_size=batch_size,
                    latency_seconds=done - item.submitted_at,
                    online_bytes_per_query=outcome.online_bytes_per_query,
                    shard=outcome.shard,
                    job_seed=outcome.job_seed,
                ),
            )
        self._forget(batch)

    def _forget(self, batch: List[_PendingQuery]) -> None:
        with self._inflight_lock:
            for item in batch:
                self._inflight.pop(id(item), None)


def _resolve(future: "Future[ServedResult]", result=None, exception=None) -> bool:
    """Resolve a future without letting a client-side cancel() (or any other
    already-settled state) kill the dispatcher thread.  Returns whether this
    call actually settled the future."""
    try:
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)
        return True
    except InvalidStateError:
        return False
