"""Asyncio serving daemon: one event loop, many clients, one supervised pool.

:class:`ServingDaemon` is the control plane the ROADMAP's top open item
asks for.  One asyncio event loop (on a background thread) multiplexes any
number of client connections over a framed protocol that reuses the wire
codec of :mod:`repro.crypto.transport`; every query passes the
:class:`~repro.serve.admission.AdmissionController` (bounded queues,
explicit backpressure with a retry-after hint) before reaching the
heartbeat-supervised :class:`~repro.serve.pool.ShardedServingPool`, and a
:class:`~repro.serve.supervisor.ShardSupervisor` evicts wedged shards and
autoscales the fleet from observed queue depth.

Wire protocol (one TCP connection, either direction)::

    frame   := u32le length || kind || body
    kind    := "J" (UTF-8 JSON control) | "A" (array, transport codec)
             | "H" (heartbeat, empty body)

Request/response pairs are matched by an ``id`` echoed in the JSON frames;
``submit`` requests carry their query stack in the following ``A`` frame,
``result`` responses carry the logits the same way.  ``H`` frames are
answered with ``H`` immediately, even while submissions are in flight —
the client-side liveness signal.  The same port also answers plain HTTP
``GET /stats`` and ``GET /healthz`` (the first four bytes ``b"GET "``
cannot prefix a framed message of sane length, so sniffing is unambiguous)
with continuously-updated JSON — curl-able observability with zero extra
listeners.

:class:`DaemonClient` is the blocking client used by tests, benchmarks and
the example CLI.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.transport import _LEN_PREFIX, decode_array, encode_array
from repro.serve.admission import AdmissionController, BackpressureError
from repro.serve.cache import ServableModel
from repro.serve.pool import ShardedServingPool
from repro.serve.supervisor import AutoscalePolicy, ShardSupervisor

_KIND_JSON = b"J"
_KIND_ARRAY = b"A"
_KIND_HEARTBEAT = b"H"

#: largest frame a peer may send (queries are small; logits smaller) — a
#: corrupt length prefix must not make the daemon allocate gigabytes
MAX_FRAME_BYTES = 256 * 1024 * 1024


@dataclass
class DaemonResult:
    """What one :meth:`DaemonClient.infer` call resolves to."""

    logits: np.ndarray
    predicted_classes: List[int]
    #: session seed of each query's executing job — replaying the in-process
    #: engine at that seed reproduces the query's logits bit for bit
    job_seeds: List[int]
    shards: List[Optional[int]]
    model: str
    latency_ms: float


@dataclass
class _DaemonCounters:
    connections_opened: int = 0
    connections_active: int = 0
    requests_served: int = 0
    heartbeat_frames: int = 0
    http_requests: int = 0
    client_failures: int = 0  # submissions that failed *without* a shed verdict
    lock: threading.Lock = field(default_factory=threading.Lock)

    def bump(self, name: str, delta: int = 1) -> None:
        with self.lock:
            setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, int]:
        with self.lock:
            return {
                "connections_opened": self.connections_opened,
                "connections_active": self.connections_active,
                "requests_served": self.requests_served,
                "heartbeat_frames": self.heartbeat_frames,
                "http_requests": self.http_requests,
                "client_failures": self.client_failures,
            }


class _Connection:
    """Write-side of one client connection, serialized by an asyncio lock so
    concurrent submit tasks never interleave their J+A frame pairs."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()

    async def send_frames(self, *frames: Tuple[bytes, bytes]) -> None:
        async with self.lock:
            for kind, body in frames:
                self.writer.write(_LEN_PREFIX.pack(len(kind) + len(body)) + kind + body)
            await self.writer.drain()

    async def send_json(self, payload: Dict[str, object]) -> None:
        await self.send_frames((_KIND_JSON, json.dumps(payload).encode("utf-8")))


class ServingDaemon:
    """The asyncio serving control plane over one supervised shard pool.

    Args:
        models: the deployable zoo (also accepted pre-wrapped in a pool via
            ``pool=``, in which case ``pool_kwargs`` are ignored).
        host / port: TCP endpoint (``port=0`` binds an ephemeral port,
            published as :attr:`port` after :meth:`start`).
        queue_budget / ewma_alpha / retry_floor_ms: admission-control knobs
            (see :class:`~repro.serve.admission.AdmissionController`).
        autoscale: optional autoscaling policy; when set, the pool's
            ``max_shards`` is raised to the policy ceiling so scale-ups have
            headroom.
        heartbeat_deadline: seconds of heartbeat silence after which a
            shard party counts as wedged (forwarded to the pool).
        supervise_interval: seconds between supervision sweeps.
        pool: a pre-built pool to serve (the daemon then owns its
            lifecycle); built from ``models`` + ``pool_kwargs`` otherwise.
    """

    def __init__(
        self,
        models: Dict[str, ServableModel],
        host: str = "127.0.0.1",
        port: int = 0,
        queue_budget: int = 64,
        ewma_alpha: float = 0.2,
        retry_floor_ms: float = 25.0,
        autoscale: Optional[AutoscalePolicy] = None,
        heartbeat_deadline: float = 5.0,
        supervise_interval: float = 0.25,
        respawn_cooldown: float = 2.0,
        pool: Optional[ShardedServingPool] = None,
        **pool_kwargs,
    ) -> None:
        self.host = host
        self.port = port
        self.autoscale = autoscale
        if pool is None:
            if autoscale is not None:
                floor = pool_kwargs.get("num_shards", 2)
                pool_kwargs.setdefault("max_shards", max(autoscale.max_shards, floor))
            pool_kwargs.setdefault("heartbeat_deadline", heartbeat_deadline)
            pool = ShardedServingPool(models=models, **pool_kwargs)
        self.pool = pool
        self.models = pool.models
        self.admission = AdmissionController(
            queue_budget=queue_budget,
            ewma_alpha=ewma_alpha,
            retry_floor_ms=retry_floor_ms,
        )
        self.supervisor = ShardSupervisor(
            pool,
            admission=self.admission,
            policy=autoscale,
            interval=supervise_interval,
            respawn_cooldown=respawn_cooldown,
        )
        self.counters = _DaemonCounters()
        self.started_at: Optional[float] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------ #
    def start(self, timeout: float = 30.0) -> "ServingDaemon":
        """Boot the event loop thread, bind the port, start supervising."""
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="serving-daemon", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start_server(), self._loop)
        try:
            future.result(timeout=timeout)
        except Exception:
            self.close()
            raise
        self.supervisor.start()
        self.started_at = time.monotonic()
        return self

    async def _start_server(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def close(self, timeout: float = 60.0) -> None:
        """Stop accepting, drain, stop supervising, shut the pool down."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None:
            async def _shutdown() -> None:
                if self._server is not None:
                    self._server.close()
                    await self._server.wait_closed()
                # cancel parked connection handlers so no coroutine outlives
                # the loop (a GC'd handler would try to close its writer on a
                # dead loop and raise an unraisable RuntimeError)
                tasks = [
                    task
                    for task in asyncio.all_tasks()
                    if task is not asyncio.current_task()
                ]
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)

            try:
                asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(
                    timeout=timeout
                )
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=timeout)
            self._loop.close()
            self._loop = None
        self.supervisor.stop()
        self.pool.close(timeout=timeout)

    def __enter__(self) -> "ServingDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # -- observability --------------------------------------------------------- #
    def stats_payload(self) -> Dict[str, object]:
        """The continuously-updated ``/stats`` document."""
        return {
            "schema": "serving-bench/v1",
            "kind": "control_plane_stats",
            "uptime_seconds": (
                time.monotonic() - self.started_at if self.started_at else 0.0
            ),
            "endpoint": {"host": self.host, "port": self.port},
            "daemon": self.counters.snapshot(),
            "admission": self.admission.snapshot(),
            "supervisor": self.supervisor.stats_snapshot(),
            "pool": self.pool.stats_snapshot(),
        }

    def healthz_payload(self) -> Dict[str, object]:
        """The ``/healthz`` document: liveness at a glance."""
        live = self.pool.live_shards
        booting = self.pool.booting_shards()
        admission = self.admission.snapshot()
        status = "ok" if live > 0 else ("booting" if booting else "dead")
        return {
            "status": status,
            "live_shards": live,
            "booting_shards": booting,
            "max_shards": self.pool.max_shards,
            "queue_depth": admission["queue_depth"],
            "queue_budget": admission["queue_budget"],
            "jobs_shed": admission["jobs_shed"],
            "heartbeats_missed": self.supervisor.heartbeats_missed,
            "uptime_seconds": (
                time.monotonic() - self.started_at if self.started_at else 0.0
            ),
        }

    # -- connection handling ---------------------------------------------------- #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters.bump("connections_opened")
        self.counters.bump("connections_active")
        try:
            try:
                head = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if head == b"GET ":
                await self._serve_http(reader, writer)
                return
            await self._serve_frames(head, reader, writer)
        except asyncio.CancelledError:
            # daemon shutdown cancelled us; finish quietly so asyncio's
            # stream machinery doesn't log the cancellation as an error
            return
        finally:
            self.counters.bump("connections_active", -1)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError, asyncio.CancelledError):
                # RuntimeError: the loop died under us during shutdown
                pass

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one plain HTTP GET (``/stats`` or ``/healthz``) and close."""
        self.counters.bump("http_requests")
        try:
            request = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=10.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, ConnectionError):
            return
        path = request.split(b"\r\n", 1)[0].split(b" ", 1)[0].decode("latin-1")
        if path == "/stats":
            status, payload = "200 OK", self.stats_payload()
        elif path == "/healthz":
            payload = self.healthz_payload()
            status = "200 OK" if payload["status"] == "ok" else "503 Service Unavailable"
        else:
            status, payload = "404 Not Found", {"error": f"unknown path {path!r}"}
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _read_frame(
        self, reader: asyncio.StreamReader, head: Optional[bytes] = None
    ) -> Tuple[bytes, bytes]:
        if head is None:
            head = await reader.readexactly(4)
        (length,) = _LEN_PREFIX.unpack(head)
        if not 1 <= length <= MAX_FRAME_BYTES:
            raise ValueError(f"insane frame length {length}")
        body = await reader.readexactly(length)
        return body[:1], body[1:]

    async def _serve_frames(
        self,
        head: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _Connection(writer)
        tasks: List[asyncio.Task] = []
        try:
            first = True
            while True:
                try:
                    kind, body = await self._read_frame(
                        reader, head=head if first else None
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                first = False
                if kind == _KIND_HEARTBEAT:
                    # answered inline even while submissions run — the
                    # client's proof the daemon's loop is alive
                    self.counters.bump("heartbeat_frames")
                    await conn.send_frames((_KIND_HEARTBEAT, b""))
                    continue
                if kind != _KIND_JSON:
                    await conn.send_json(
                        {"kind": "error", "error": f"unexpected frame kind {kind!r}"}
                    )
                    continue
                try:
                    request = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    await conn.send_json(
                        {"kind": "error", "error": f"bad control frame: {exc}"}
                    )
                    continue
                await self._dispatch_request(request, reader, conn, tasks)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()

    async def _dispatch_request(
        self,
        request: Dict[str, object],
        reader: asyncio.StreamReader,
        conn: _Connection,
        tasks: List[asyncio.Task],
    ) -> None:
        kind = request.get("kind")
        request_id = request.get("id")
        if kind == "submit":
            # the query stack rides in the next frame, read before handing
            # off so the reader loop stays frame-aligned
            try:
                array_kind, array_body = await self._read_frame(reader)
                if array_kind != _KIND_ARRAY:
                    raise ValueError(
                        f"submit must be followed by an array frame, got {array_kind!r}"
                    )
                queries, _ = decode_array(array_body)
            except (asyncio.IncompleteReadError, ConnectionError):
                raise
            except Exception as exc:
                await conn.send_json(
                    {"kind": "error", "id": request_id, "error": str(exc)}
                )
                return
            tasks[:] = [t for t in tasks if not t.done()]
            tasks.append(
                asyncio.get_running_loop().create_task(
                    self._do_submit(conn, request, queries)
                )
            )
        elif kind == "stats":
            self.counters.bump("requests_served")
            await conn.send_json(
                {"kind": "stats", "id": request_id, "stats": self.stats_payload()}
            )
        elif kind == "healthz":
            self.counters.bump("requests_served")
            await conn.send_json(
                {"kind": "healthz", "id": request_id, "healthz": self.healthz_payload()}
            )
        else:
            await conn.send_json(
                {"kind": "error", "id": request_id, "error": f"unknown request {kind!r}"}
            )

    async def _do_submit(
        self, conn: _Connection, request: Dict[str, object], queries: np.ndarray
    ) -> None:
        request_id = request.get("id")
        model = str(request.get("model", ""))
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 4:
            await conn.send_json(
                {
                    "kind": "error",
                    "id": request_id,
                    "error": f"submit expects a (N, C, H, W) stack, got {queries.shape}",
                }
            )
            return
        count = int(queries.shape[0])
        decision = self.admission.try_admit(model, count)
        if not decision.admitted:
            # the explicit shed verdict: never a silent drop, never an
            # unbounded queue — the client backs off and retries
            await conn.send_json(
                {
                    "kind": "backpressure",
                    "id": request_id,
                    "error": (
                        f"queue for ({model!r}, batch {count}) is at "
                        f"{decision.queue_depth}/{decision.queue_budget}"
                    ),
                    "model": model,
                    "batch_size": count,
                    "queue_depth": decision.queue_depth,
                    "queue_budget": decision.queue_budget,
                    "retry_after_ms": decision.retry_after_ms,
                }
            )
            return
        started = time.perf_counter()
        try:
            futures = self.pool.submit_many(model, queries)
            results = await asyncio.gather(
                *[asyncio.wrap_future(f) for f in futures]
            )
        except (Exception, asyncio.CancelledError) as exc:
            self.admission.release(model, count)
            if isinstance(exc, asyncio.CancelledError):
                raise
            self.counters.bump("client_failures")
            await conn.send_json(
                {
                    "kind": "error",
                    "id": request_id,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        elapsed = time.perf_counter() - started
        self.admission.release(model, count, service_seconds=elapsed)
        self.counters.bump("requests_served")
        logits = np.stack([r.logits for r in results])
        await conn.send_frames(
            (
                _KIND_JSON,
                json.dumps(
                    {
                        "kind": "result",
                        "id": request_id,
                        "model": model,
                        "count": count,
                        "predicted_classes": [r.predicted_class for r in results],
                        "job_seeds": [r.job_seed for r in results],
                        "shards": [r.shard for r in results],
                        "latency_ms": 1e3 * elapsed,
                    }
                ).encode("utf-8"),
            ),
            (_KIND_ARRAY, encode_array(logits, ring=self.pool.ring)),
        )


# --------------------------------------------------------------------------- #
# Blocking client
# --------------------------------------------------------------------------- #
class DaemonClient:
    """Synchronous client for the daemon's framed protocol.

    One TCP connection, blocking request/response; safe for one thread at a
    time (benchmarks open one client per load thread).  Shed submissions
    raise :class:`~repro.serve.admission.BackpressureError` with the
    daemon's ``retry_after_ms`` hint attached.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self._next_id = 0

    # -- framing -------------------------------------------------------------- #
    def _send_frame(self, kind: bytes, body: bytes) -> None:
        self._sock.sendall(_LEN_PREFIX.pack(len(kind) + len(body)) + kind + body)

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _recv_frame(self) -> Tuple[bytes, bytes]:
        (length,) = _LEN_PREFIX.unpack(self._recv_exact(4))
        body = self._recv_exact(length)
        return body[:1], body[1:]

    def _recv_json(self) -> Dict[str, object]:
        while True:
            kind, body = self._recv_frame()
            if kind == _KIND_HEARTBEAT:
                continue  # liveness chatter, not a response
            if kind != _KIND_JSON:
                raise ValueError(f"expected a JSON frame, got {kind!r}")
            return json.loads(body.decode("utf-8"))

    # -- API ------------------------------------------------------------------ #
    def infer(self, model: str, queries: np.ndarray) -> DaemonResult:
        """Submit a query stack; blocks until logits or an explicit verdict.

        Raises :class:`BackpressureError` when shed (with ``retry_after_ms``),
        :class:`RuntimeError` on any other daemon-side failure.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 3:
            queries = queries[None]
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self._send_frame(
                _KIND_JSON,
                json.dumps(
                    {"kind": "submit", "id": request_id, "model": model}
                ).encode("utf-8"),
            )
            self._send_frame(_KIND_ARRAY, encode_array(queries))
            reply = self._recv_json()
            if reply.get("kind") == "backpressure":
                raise BackpressureError(
                    str(reply.get("error")),
                    model=model,
                    batch_size=int(reply.get("batch_size", 0)),
                    queue_depth=int(reply.get("queue_depth", 0)),
                    queue_budget=int(reply.get("queue_budget", 0)),
                    retry_after_ms=float(reply.get("retry_after_ms", 0.0)),
                )
            if reply.get("kind") != "result":
                raise RuntimeError(f"inference failed: {reply.get('error')}")
            kind, body = self._recv_frame()
            if kind != _KIND_ARRAY:
                raise ValueError(f"expected the logits frame, got {kind!r}")
            logits, _ = decode_array(body)
        return DaemonResult(
            logits=logits,
            predicted_classes=list(reply["predicted_classes"]),
            job_seeds=list(reply["job_seeds"]),
            shards=list(reply["shards"]),
            model=model,
            latency_ms=float(reply["latency_ms"]),
        )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            self._next_id += 1
            self._send_frame(
                _KIND_JSON,
                json.dumps({"kind": "stats", "id": self._next_id}).encode("utf-8"),
            )
            return self._recv_json()["stats"]

    def healthz(self) -> Dict[str, object]:
        with self._lock:
            self._next_id += 1
            self._send_frame(
                _KIND_JSON,
                json.dumps({"kind": "healthz", "id": self._next_id}).encode("utf-8"),
            )
            return self._recv_json()["healthz"]

    def ping(self) -> bool:
        """Heartbeat round trip: proof the daemon's event loop is live."""
        with self._lock:
            self._send_frame(_KIND_HEARTBEAT, b"")
            kind, _ = self._recv_frame()
            return kind == _KIND_HEARTBEAT

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def http_get(host: str, port: int, path: str, timeout: float = 10.0) -> Dict[str, object]:
    """Tiny dependency-free HTTP GET against the daemon's JSON endpoints."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks)
    body = response.partition(b"\r\n\r\n")[2]
    return json.loads(body.decode("utf-8"))
