"""Plan and randomness-pool cache keyed by ``(model, batch_size)``.

Compiling a plan is pure CPU work and a randomness pool is single-use
correlated randomness: a serving deployment therefore keeps compiled plans
forever and maintains a buffer of pre-provisioned pools per (model, batch
size) that an offline provisioner refills.  A dispatch that finds the buffer
empty falls back to generating a pool on the spot — correct but paying
offline latency on the serving path, which the cache counts as a *cold
miss* so operators can size provisioning.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.crypto.dealer import RandomnessPool, TrustedDealer
from repro.crypto.passes import optimize_plan
from repro.crypto.plan import compile_plan
from repro.crypto.ring import DEFAULT_RING, FixedPointRing
from repro.models.specs import ModelSpec


@dataclass
class ServableModel:
    """A deployable model: its layer spec and exported layer weights."""

    spec: ModelSpec
    weights: Dict[str, Dict[str, np.ndarray]]


@dataclass
class CacheStats:
    """Counters describing how well provisioning kept up with traffic."""

    plans_compiled: int = 0
    pools_provisioned: int = 0
    pools_served: int = 0
    cold_pool_misses: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "plans_compiled": self.plans_compiled,
            "pools_provisioned": self.pools_provisioned,
            "pools_served": self.pools_served,
            "cold_pool_misses": self.cold_pool_misses,
        }


class PlanPoolCache:
    """Compiled plans + pre-provisioned randomness pools per (model, batch).

    Thread-safe: the serving dispatcher and an offline provisioner thread
    may call into the cache concurrently.
    """

    def __init__(
        self,
        ring: Optional[FixedPointRing] = None,
        seed: int = 0,
        optimize: bool = True,
        lower: bool = True,
    ) -> None:
        self.ring = ring or DEFAULT_RING
        self.optimize = optimize
        self.lower = lower
        self.dealer = TrustedDealer(ring=self.ring, seed=seed)
        self.stats = CacheStats()
        self._plans: Dict[Tuple[str, int], object] = {}
        self._pools: Dict[Tuple[str, int], Deque[RandomnessPool]] = {}
        self._lock = threading.Lock()

    def plan(self, spec: ModelSpec, batch_size: int):
        """The compiled plan for ``(spec.name, batch_size)``; compiles once.

        With ``optimize`` (the default) the optimizer pass pipeline runs
        once at compile time and a round-coalescing
        :class:`~repro.crypto.passes.ScheduledPlan` is cached; with
        ``lower`` on top (also the default) the schedule is bound to the
        fused local-compute kernels and a
        :class:`~repro.crypto.passes.LoweredPlan` is cached instead.
        """
        key = (spec.name, batch_size)
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                plan = compile_plan(spec, batch_size=batch_size, ring=self.ring)
                if self.optimize:
                    plan = optimize_plan(plan, lower=self.lower)
                self._plans[key] = plan
                self.stats.plans_compiled += 1
            return plan

    def provision(self, spec: ModelSpec, batch_size: int, count: int = 1) -> int:
        """Pre-generate ``count`` pools for ``(spec.name, batch_size)``.

        Meant to run off the serving path (startup or a background refill
        thread).  Returns the number of pools now buffered for that key.
        """
        plan = self.plan(spec, batch_size)
        manifest = plan.manifest
        pools = []
        for _ in range(count):
            # Dealer access is serialized; generation dominates, so hold the
            # lock only around the shared dealer RNG.
            with self._lock:
                pools.append(self.dealer.preprocess(manifest))
                self.stats.pools_provisioned += 1
        key = (spec.name, batch_size)
        with self._lock:
            bucket = self._pools.setdefault(key, deque())
            bucket.extend(pools)
            return len(bucket)

    def acquire_pool(self, spec: ModelSpec, batch_size: int) -> RandomnessPool:
        """Pop a provisioned pool, or generate one cold (counted as a miss)."""
        plan = self.plan(spec, batch_size)
        key = (spec.name, batch_size)
        with self._lock:
            bucket = self._pools.get(key)
            if bucket:
                self.stats.pools_served += 1
                return bucket.popleft()
            self.stats.cold_pool_misses += 1
            self.stats.pools_served += 1
            return self.dealer.preprocess(plan.manifest)

    def buffered_pools(self, model_name: str, batch_size: int) -> int:
        with self._lock:
            return len(self._pools.get((model_name, batch_size), ()))
