"""Batched serving frontend for secure inference.

The ROADMAP's north star is a serving path that holds up under heavy query
traffic.  The plan runtime already amortizes compilation and preprocessing
across batched queries; this package adds the missing piece between clients
and the runtime:

- :class:`~repro.serve.cache.PlanPoolCache` — compiled plans and
  pre-provisioned randomness pools cached per ``(model, batch_size)``, so
  the serving hot path never compiles and (when provisioned ahead) never
  runs the dealer;
- :class:`~repro.serve.frontend.BatchingFrontend` — a request queue that
  coalesces incoming queries up to ``(max_batch, max_wait)`` and dispatches
  each coalesced batch through a single plan execution, resolving one future
  per query and recording queue/serve latency percentiles;
- :class:`~repro.serve.pool.ShardedServingPool` — N persistent two-process
  worker pairs behind the same coalescing frontend: batches route to idle
  shards, party servers keep randomness buffers filled in the background,
  and a dead worker pair is evicted while the rest keep serving.
"""

from repro.serve.cache import CacheStats, PlanPoolCache, ServableModel
from repro.serve.frontend import (
    BatchingFrontend,
    BatchOutcome,
    ServedResult,
    ServingStats,
)
from repro.serve.pool import (
    JobTicket,
    PoolBatchResult,
    ShardedServingPool,
    ShardFailure,
    ShardStats,
    WorkerShard,
)

__all__ = [
    "BatchingFrontend",
    "BatchOutcome",
    "CacheStats",
    "JobTicket",
    "PlanPoolCache",
    "PoolBatchResult",
    "ServableModel",
    "ServedResult",
    "ServingStats",
    "ShardedServingPool",
    "ShardFailure",
    "ShardStats",
    "WorkerShard",
]
