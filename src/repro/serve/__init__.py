"""Batched serving frontend for secure inference.

The ROADMAP's north star is a serving path that holds up under heavy query
traffic.  The plan runtime already amortizes compilation and preprocessing
across batched queries; this package adds the missing piece between clients
and the runtime:

- :class:`~repro.serve.cache.PlanPoolCache` — compiled plans and
  pre-provisioned randomness pools cached per ``(model, batch_size)``, so
  the serving hot path never compiles and (when provisioned ahead) never
  runs the dealer;
- :class:`~repro.serve.frontend.BatchingFrontend` — a request queue that
  coalesces incoming queries up to ``(max_batch, max_wait)`` and dispatches
  each coalesced batch through a single plan execution, resolving one future
  per query and recording queue/serve latency percentiles;
- :class:`~repro.serve.pool.ShardedServingPool` — N persistent two-process
  worker pairs behind the same coalescing frontend: batches route to idle
  shards, party servers keep randomness buffers filled in the background,
  and a dead worker pair is evicted while the rest keep serving;
- :class:`~repro.serve.admission.AdmissionController` — bounded per-(model,
  batch) queues with explicit backpressure (shed-with-retry-after, never
  unbounded buffering) and the EWMA load signals autoscaling steers by;
- :class:`~repro.serve.supervisor.ShardSupervisor` — heartbeat sweeps,
  proactive evict-and-respawn with per-slot cooldowns, and
  :class:`~repro.serve.supervisor.AutoscalePolicy`-driven scaling of the
  shard fleet from observed queue depth;
- :class:`~repro.serve.daemon.ServingDaemon` — the asyncio control plane:
  one event loop multiplexing many framed client connections over the
  transport codec, plus curl-able ``/stats`` + ``/healthz`` JSON endpoints
  on the same port; :class:`~repro.serve.daemon.DaemonClient` is the
  blocking client.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    BackpressureError,
)
from repro.serve.cache import CacheStats, PlanPoolCache, ServableModel
from repro.serve.daemon import DaemonClient, DaemonResult, ServingDaemon
from repro.serve.frontend import (
    BatchingFrontend,
    BatchOutcome,
    PoolShutdown,
    ServedResult,
    ServingStats,
)
from repro.serve.pool import (
    HeartbeatMiss,
    JobTicket,
    PoolBatchResult,
    ShardedServingPool,
    ShardFailure,
    ShardStats,
    WorkerShard,
)
from repro.serve.supervisor import AutoscalePolicy, ShardSupervisor

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AutoscalePolicy",
    "BackpressureError",
    "BatchingFrontend",
    "BatchOutcome",
    "CacheStats",
    "DaemonClient",
    "DaemonResult",
    "HeartbeatMiss",
    "JobTicket",
    "PlanPoolCache",
    "PoolBatchResult",
    "PoolShutdown",
    "ServableModel",
    "ServedResult",
    "ServingDaemon",
    "ServingStats",
    "ShardedServingPool",
    "ShardFailure",
    "ShardStats",
    "ShardSupervisor",
    "WorkerShard",
]
