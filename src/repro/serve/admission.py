"""Admission control for the serving control plane: bounded queues, explicit
backpressure, and the load signals the autoscaler steers by.

The pool's coalescing frontend accepts every submitted query — under a
sustained overload that means an unbounded queue, collapsing latency for
everyone and an eventual OOM.  The :class:`AdmissionController` sits in
front of it and enforces a *bounded* amount of queued work per
``(model, batch)`` key:

- every accepted query **admits** against the key's queue budget and
  **releases** when its future resolves (success or failure — the budget
  tracks in-flight work, not outcomes);
- a query that would push the key past its budget is **shed** with an
  explicit :class:`BackpressureError` carrying a ``retry_after_ms`` hint
  computed from the current depth and the key's EWMA service time — the
  client is told *when* capacity is expected, never silently dropped;
- per-key EWMA service time and a queue-depth percentile window feed the
  supervisor's autoscaling decisions and the ``/stats`` endpoint.

All operations are quick lock-held bookkeeping — safe to call from the
daemon's event loop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

import numpy as np

#: queue-depth samples kept per key for percentile computation
DEPTH_WINDOW = 10_000


class BackpressureError(RuntimeError):
    """The serving queue is full; the query was shed, not dropped silently.

    ``retry_after_ms`` is the controller's estimate of when capacity frees
    up (current queued work times the key's per-query EWMA service time) —
    a well-behaved client backs off at least that long before resubmitting.
    """

    def __init__(
        self,
        message: str,
        model: str = "",
        batch_size: int = 0,
        queue_depth: int = 0,
        queue_budget: int = 0,
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.model = model
        self.batch_size = batch_size
        self.queue_depth = queue_depth
        self.queue_budget = queue_budget
        self.retry_after_ms = retry_after_ms


@dataclass
class AdmissionDecision:
    """What the controller decided for one submission."""

    admitted: bool
    model: str
    batch_size: int
    #: queued query-weight for the key at decision time (this query included
    #: when admitted)
    queue_depth: int
    queue_budget: int
    #: backoff hint handed to shed clients (0 when admitted)
    retry_after_ms: float = 0.0

    def raise_if_shed(self) -> None:
        if not self.admitted:
            raise BackpressureError(
                f"queue for ({self.model!r}, batch {self.batch_size}) is at "
                f"{self.queue_depth}/{self.queue_budget} queries; retry in "
                f"{self.retry_after_ms:.0f} ms",
                model=self.model,
                batch_size=self.batch_size,
                queue_depth=self.queue_depth,
                queue_budget=self.queue_budget,
                retry_after_ms=self.retry_after_ms,
            )


@dataclass
class _KeyState:
    """Bookkeeping of one (model, batch) admission key."""

    depth: int = 0  # queued + in-flight query weight
    admitted: int = 0
    shed: int = 0
    ewma_service_s: float = 0.0
    depth_samples: Deque[int] = field(
        default_factory=lambda: deque(maxlen=DEPTH_WINDOW)
    )


class AdmissionController:
    """Bounded-queue admission with backpressure hints and EWMA load signals.

    Args:
        queue_budget: max queued + in-flight query weight per (model, batch)
            key before submissions are shed.
        ewma_alpha: smoothing factor of the per-key service-time EWMA
            (higher = reacts faster to load shifts).
        retry_floor_ms: minimum ``retry_after_ms`` handed to shed clients,
            so a cold key (no service-time estimate yet) still spreads its
            retry storm out.
    """

    def __init__(
        self,
        queue_budget: int = 64,
        ewma_alpha: float = 0.2,
        retry_floor_ms: float = 25.0,
    ) -> None:
        if queue_budget < 1:
            raise ValueError(f"queue_budget must be >= 1, got {queue_budget}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.queue_budget = queue_budget
        self.ewma_alpha = ewma_alpha
        self.retry_floor_ms = retry_floor_ms
        self._keys: Dict[Tuple[str, int], _KeyState] = {}
        self._lock = threading.Lock()

    # -- admission ----------------------------------------------------------- #
    def try_admit(self, model: str, batch_size: int = 1) -> AdmissionDecision:
        """Admit ``batch_size`` query-weight for the key, or shed it.

        The caller owns the admitted weight and must :meth:`release` it
        exactly once when the work resolves (whatever the outcome).
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        key = (model, batch_size)
        with self._lock:
            state = self._keys.setdefault(key, _KeyState())
            if state.depth + batch_size > self.queue_budget:
                state.shed += batch_size
                state.depth_samples.append(state.depth)
                return AdmissionDecision(
                    admitted=False,
                    model=model,
                    batch_size=batch_size,
                    queue_depth=state.depth,
                    queue_budget=self.queue_budget,
                    retry_after_ms=self._retry_after_ms_locked(state),
                )
            state.depth += batch_size
            state.admitted += batch_size
            state.depth_samples.append(state.depth)
            return AdmissionDecision(
                admitted=True,
                model=model,
                batch_size=batch_size,
                queue_depth=state.depth,
                queue_budget=self.queue_budget,
            )

    def admit_or_raise(self, model: str, batch_size: int = 1) -> AdmissionDecision:
        """:meth:`try_admit`, raising :class:`BackpressureError` on shed."""
        decision = self.try_admit(model, batch_size)
        decision.raise_if_shed()
        return decision

    def release(
        self,
        model: str,
        batch_size: int = 1,
        service_seconds: Optional[float] = None,
    ) -> None:
        """Return admitted query-weight; optionally record the service time.

        ``service_seconds`` (wall time from admission to resolution, per
        admission) updates the key's EWMA — pass it on success so the
        backpressure hints and the autoscaler track reality.
        """
        key = (model, batch_size)
        with self._lock:
            state = self._keys.get(key)
            if state is None:
                return
            state.depth = max(0, state.depth - batch_size)
            if service_seconds is not None and service_seconds >= 0:
                per_query = service_seconds / batch_size
                if state.ewma_service_s == 0.0:
                    state.ewma_service_s = per_query
                else:
                    state.ewma_service_s += self.ewma_alpha * (
                        per_query - state.ewma_service_s
                    )

    def _retry_after_ms_locked(self, state: _KeyState) -> float:
        # expected drain time of the work already queued ahead, with a floor
        # so cold keys still spread their retry storm
        estimate = 1e3 * state.depth * state.ewma_service_s
        return max(estimate, self.retry_floor_ms)

    # -- load signals --------------------------------------------------------- #
    def queue_depth(self, model: Optional[str] = None) -> int:
        """Current queued query-weight (one key, or the whole controller)."""
        with self._lock:
            return sum(
                state.depth
                for (name, _), state in self._keys.items()
                if model is None or name == model
            )

    def ewma_service_seconds(self) -> float:
        """Depth-weighted mean of the per-key service-time EWMAs."""
        with self._lock:
            states = [s for s in self._keys.values() if s.ewma_service_s > 0]
            if not states:
                return 0.0
            total = sum(max(s.depth, 1) for s in states)
            return (
                sum(s.ewma_service_s * max(s.depth, 1) for s in states) / total
            )

    def snapshot(self) -> Dict[str, object]:
        """Counters + percentiles for ``/stats`` and the bench report."""
        with self._lock:
            per_key = {}
            all_samples: list = []
            jobs_admitted = 0
            jobs_shed = 0
            for (model, batch_size), state in sorted(self._keys.items()):
                samples = list(state.depth_samples)
                all_samples.extend(samples)
                jobs_admitted += state.admitted
                jobs_shed += state.shed
                per_key[f"{model}/b{batch_size}"] = {
                    "queue_depth": state.depth,
                    "admitted": state.admitted,
                    "shed": state.shed,
                    "ewma_service_ms": 1e3 * state.ewma_service_s,
                    "queue_depth_p95": float(np.percentile(samples, 95))
                    if samples
                    else 0.0,
                }
            total_depth = sum(s.depth for s in self._keys.values())
        return {
            "queue_budget": self.queue_budget,
            "queue_depth": total_depth,
            "jobs_admitted": jobs_admitted,
            "jobs_shed": jobs_shed,
            "queue_depth_p95": float(np.percentile(all_samples, 95))
            if all_samples
            else 0.0,
            "ewma_service_ms": 1e3 * self.ewma_service_seconds(),
            "per_key": per_key,
        }
