"""Shard supervision: heartbeat sweeps, evict-and-respawn, autoscaling.

The pool already heals itself *reactively* — a shard that dies mid-job is
evicted by the dispatcher that hit the failure and its job replays
elsewhere.  The :class:`ShardSupervisor` adds the *proactive* half:

- a background sweep drains every shard's heartbeat frames
  (:meth:`~repro.serve.pool.WorkerShard.poll_heartbeats`), so idle shards'
  liveness stays fresh and their pipes never fill up;
- a shard whose party went silent past the heartbeat deadline, or whose
  party *process* died while idle, is evicted and respawned **before** the
  next job finds out the hard way — the respawn continues the dead shard's
  seed stream exactly as the reactive path does;
- per-slot respawn cooldowns keep a crash-looping shard (bad host, poisoned
  core file, OOM loop) from turning into a respawn storm;
- an :class:`AutoscalePolicy` grows the pool when queued work per live
  shard stays high and shrinks it when the pool idles, within
  ``[min_shards, max_shards]`` and rate-limited by a cooldown.

The supervisor is optional and composable: the pool works without it (as
in PRs 3–9), the daemon runs one per pool.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.serve.admission import AdmissionController
from repro.serve.pool import ShardedServingPool, WorkerShard


@dataclass(frozen=True)
class AutoscalePolicy:
    """When to grow or shrink the shard fleet.

    Decisions use *queued query-weight per live shard* (from the admission
    controller) so the thresholds are fleet-size invariant:

    - depth per live shard > ``scale_up_depth`` → add a shard (up to
      ``max_shards``);
    - depth per live shard < ``scale_down_depth`` for a full cooldown →
      retire an idle shard (down to ``min_shards``).

    ``cooldown_seconds`` rate-limits *all* scaling actions, so a burst
    cannot thrash the fleet up and down.
    """

    min_shards: int = 1
    max_shards: int = 4
    #: queued query-weight per live shard above which the pool grows
    scale_up_depth: float = 8.0
    #: queued query-weight per live shard below which the pool shrinks
    scale_down_depth: float = 1.0
    cooldown_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards ({self.max_shards}) must be >= "
                f"min_shards ({self.min_shards})"
            )
        if self.scale_down_depth >= self.scale_up_depth:
            raise ValueError(
                "scale_down_depth must be < scale_up_depth "
                f"({self.scale_down_depth} >= {self.scale_up_depth})"
            )


class ShardSupervisor:
    """Background liveness sweeps + autoscaling over one serving pool.

    Args:
        pool: the pool to supervise.  Its ``heartbeat_deadline`` governs
            when a silent party counts as wedged; the supervisor also
            treats a dead party *process* (detected while the shard idles)
            as an eviction trigger immediately.
        admission: the admission controller whose queue depth steers
            autoscaling (``None`` disables autoscaling; supervision still
            runs).
        policy: the autoscaling policy (``None`` disables autoscaling).
        interval: seconds between sweeps.
        respawn_cooldown: minimum seconds between evictions of the same
            shard slot — the respawn-storm brake.
    """

    def __init__(
        self,
        pool: ShardedServingPool,
        admission: Optional[AdmissionController] = None,
        policy: Optional[AutoscalePolicy] = None,
        interval: float = 0.25,
        respawn_cooldown: float = 2.0,
    ) -> None:
        self.pool = pool
        self.admission = admission
        self.policy = policy
        self.interval = interval
        self.respawn_cooldown = respawn_cooldown
        self.heartbeats_missed = 0
        self.shards_autoscaled_up = 0
        self.shards_autoscaled_down = 0
        self.shards_evicted = 0
        self._evicted_at: Dict[int, float] = {}  # slot index → last eviction
        self._last_scale_at = 0.0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------ #
    def start(self) -> "ShardSupervisor":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="shard-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- the sweep ------------------------------------------------------------ #
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sweep()
            except Exception:
                # supervision must never die with the patient; the next
                # sweep sees current state and acts on it
                continue

    def sweep(self) -> None:
        """One supervision pass: liveness, eviction, autoscaling."""
        now = time.monotonic()
        for shard in self.pool.shards_view():
            if not shard.alive:
                continue
            ages = shard.poll_heartbeats()
            reason = self._eviction_reason(shard, ages)
            if reason is None:
                continue
            with self._lock:
                last = self._evicted_at.get(shard.index, -1e9)
                if now - last < self.respawn_cooldown:
                    continue  # storm brake: let the previous respawn settle
                self._evicted_at[shard.index] = now
                if reason == "heartbeat":
                    self.heartbeats_missed += 1
                self.shards_evicted += 1
            shard.kill()
            self.pool._respawn_shard_async(shard)
        self._autoscale(now)

    def _eviction_reason(
        self, shard: WorkerShard, ages: Dict[int, Optional[float]]
    ) -> Optional[str]:
        deadline = self.pool.heartbeat_deadline
        if deadline > 0:
            for party, age in ages.items():
                # enforce only after a first heartbeat: a slow boot or a
                # disabled emitter never trips the sweep
                if age is not None and age > deadline:
                    return "heartbeat"
        for process in shard.processes:
            if not process.is_alive():
                return "process-death"
        return None

    # -- autoscaling ---------------------------------------------------------- #
    def _autoscale(self, now: float) -> None:
        policy = self.policy
        if policy is None or self.admission is None:
            return
        with self._lock:
            if now - self._last_scale_at < policy.cooldown_seconds:
                return
        live = self.pool.live_shards
        booting = self.pool.booting_shards()
        if live == 0:
            return  # eviction/respawn in flight; scaling waits for a fleet
        depth_per_shard = self.admission.queue_depth() / live
        if (
            depth_per_shard > policy.scale_up_depth
            and live + booting < policy.max_shards
        ):
            # boot off-thread: the sweep must keep supervising during the
            # multi-second boot
            self.pool.add_shard(wait=False)
            with self._lock:
                self.shards_autoscaled_up += 1
                self._last_scale_at = now
        elif (
            depth_per_shard < policy.scale_down_depth
            and live > policy.min_shards
            and booting == 0
        ):
            if self.pool.retire_shard() is not None:
                with self._lock:
                    self.shards_autoscaled_down += 1
                    self._last_scale_at = now

    # -- observability --------------------------------------------------------- #
    def stats_snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "heartbeats_missed": self.heartbeats_missed,
                "shards_evicted": self.shards_evicted,
                "shards_autoscaled_up": self.shards_autoscaled_up,
                "shards_autoscaled_down": self.shards_autoscaled_down,
                "respawn_cooldown_s": self.respawn_cooldown,
                "autoscale": {
                    "min_shards": self.policy.min_shards,
                    "max_shards": self.policy.max_shards,
                    "scale_up_depth": self.policy.scale_up_depth,
                    "scale_down_depth": self.policy.scale_down_depth,
                    "cooldown_seconds": self.policy.cooldown_seconds,
                }
                if self.policy
                else None,
            }


__all__ = ["AutoscalePolicy", "ShardSupervisor"]
