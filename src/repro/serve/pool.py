"""Sharded serving pool: N persistent worker pairs behind one frontend.

One two-process worker pair executes one plan at a time — its throughput is
bounded by the round-trip-heavy online phase.  The pool scales horizontally:
``num_shards`` worker pairs (each a pair of long-lived
:func:`repro.runtime.server.run_party_server` processes over one persistent
TCP connection), a dispatcher that routes coalesced batches to idle shards,
and the existing :class:`~repro.serve.frontend.BatchingFrontend` coalescing
in front of it all.

Lifecycle of a shard:

1. **boot** — two party processes are spawned (the only process spawns the
   shard ever performs), the inter-party connection is established once,
   plans for the warm batch sizes are compiled and randomness pools are
   pre-provisioned;
2. **serve** — each coalesced batch becomes one :class:`JobRequest` to both
   parties; the shard secret-shares the batch with the job's deterministic
   seed, reconstructs the logits from the returned shares, and cross-checks
   both parties' accounting;
3. **refill** — each party's background provisioner tops its pool buffer up
   whenever it falls below the low-water mark, off the serving path;
4. **evict / respawn / replay** — a shard whose worker processes die is
   evicted, its in-flight job is replayed on another shard from the job's
   :class:`JobTicket` (same counter, same pinned session seed — the
   recovered logits are bit-identical to the fault-free run), and a
   replacement pair is booted asynchronously that *continues* the dead
   shard's seed stream.  With ``max_job_retries=0`` the pool keeps the
   legacy evict-only semantics: the in-flight batch fails cleanly and an
   evicted slot is only replaced by an explicit
   :meth:`ShardedServingPool.restart_shard`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.events import bytes_saved_pct as _bytes_saved_pct
from repro.crypto.ring import DEFAULT_RING, FixedPointRing
from repro.crypto.sharing import share
from repro.crypto.transport import FaultPlan
from repro.models.specs import ModelSpec
from repro.runtime.server import (
    Heartbeat,
    JobFailed,
    JobReport,
    JobRequest,
    ProvisionReport,
    ProvisionRequest,
    ServerConfig,
    ServerStats,
    ShutdownRequest,
    derive_job_seed,
    run_party_server,
)
from repro.serve.cache import ServableModel
from repro.serve.frontend import (
    BatchingFrontend,
    BatchOutcome,
    PoolShutdown,
    _PendingQuery,
)


@dataclass(frozen=True)
class JobTicket:
    """The identity of one job, fixed at its *first* dispatch.

    ``seed`` is the session seed the first attempt ran (or would have run)
    under.  A retry replays the ticket verbatim on another shard — same
    counter, same pinned seed — so the recovered logits are bit-identical
    to what the fault-free run would have produced.
    """

    model: str
    batch_size: int
    counter: int
    seed: int


class ShardFailure(RuntimeError):
    """A worker pair died or desynchronized; the shard must be evicted.

    ``ticket`` carries the identity of the job that was in flight when the
    shard died (``None`` if the failure struck outside a job), so the
    pool's retry loop can replay it deterministically elsewhere.
    """

    ticket: Optional[JobTicket] = None


class HeartbeatMiss(ShardFailure):
    """A party went silent past the heartbeat deadline; the shard is wedged.

    Distinguishes a *wedged* worker (process alive but not making progress
    — stopped, deadlocked, or stuck on a dead peer link) from a merely
    *slow* one: a slow party keeps heartbeating from its background thread,
    so only true silence trips this.  Carries the last liveness evidence so
    the stall is diagnosable: when the party was last seen, which job it
    was executing and how many protocol rounds it had sent.
    """

    def __init__(
        self,
        message: str,
        party: int = -1,
        last_seen: Optional[float] = None,
        job_id: Optional[int] = None,
        round_index: int = 0,
    ) -> None:
        super().__init__(message)
        self.party = party
        self.last_seen = last_seen
        self.job_id = job_id
        self.round_index = round_index


@dataclass
class PoolBatchResult:
    """One batch executed on a shard: reconstructed output + accounting."""

    logits: np.ndarray
    model: str
    batch_size: int
    seed: int
    shard: int
    wall_seconds: float
    online_seconds: float
    payload_bytes_on_wire: int
    pool_hits: int
    pool_misses: int
    #: pids of the two party processes that served the job — constant across
    #: a shard's lifetime (the measurable form of "no per-request spawns")
    worker_pids: Tuple[int, int] = (0, 0)
    #: frame-format-v1 equivalent of ``payload_bytes_on_wire`` (no sub-byte
    #: packing) — what this job would have shipped before the packed codec
    unpacked_payload_bytes: int = 0
    #: local-compute time of the job's online phase (max over the two
    #: parties, mirroring ``online_seconds`` — they run concurrently)
    cpu_time_ns: int = 0
    #: fused-kernel invocations on the lowered plan (0 when lowering is off)
    fused_kernel_calls: int = 0

    @property
    def bytes_saved_pct(self) -> float:
        """Percent of payload the packed wire format saved for this job."""
        return _bytes_saved_pct(self.payload_bytes_on_wire, self.unpacked_payload_bytes)


@dataclass
class ShardStats:
    """Lifetime counters of one shard (driver-side view)."""

    jobs_executed: int = 0
    queries_served: int = 0
    failures: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    busy_seconds: float = 0.0
    payload_bytes: int = 0
    unpacked_payload_bytes: int = 0
    cpu_time_ns: int = 0
    fused_kernel_calls: int = 0
    #: pools the two parties fetched from the randomness factory inventory
    #: (lifetime totals, refreshed from provision reports and final stats)
    pools_from_factory: int = 0
    #: factory fetches that failed over to local cold generation
    factory_fallbacks: int = 0
    #: last observed factory inventory depth (-1 = never fetched)
    factory_inventory_depth: int = -1
    job_latencies: Deque[float] = field(default_factory=lambda: deque(maxlen=10_000))

    @property
    def pool_hit_rate(self) -> float:
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    @property
    def bytes_saved_pct(self) -> float:
        """Percent of payload the packed wire format saved, shard lifetime."""
        return _bytes_saved_pct(self.payload_bytes, self.unpacked_payload_bytes)

    def snapshot(self) -> Dict[str, object]:
        latencies = list(self.job_latencies)
        return {
            "jobs_executed": self.jobs_executed,
            "queries_served": self.queries_served,
            "failures": self.failures,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "pool_hit_rate": self.pool_hit_rate,
            "busy_seconds": self.busy_seconds,
            "payload_bytes": self.payload_bytes,
            "unpacked_payload_bytes": self.unpacked_payload_bytes,
            "bytes_saved_pct": self.bytes_saved_pct,
            "cpu_time_ns": self.cpu_time_ns,
            "fused_kernel_calls": self.fused_kernel_calls,
            "pools_from_factory": self.pools_from_factory,
            "factory_fallbacks": self.factory_fallbacks,
            "factory_inventory_depth": self.factory_inventory_depth,
            "p50_job_ms": 1e3 * float(np.percentile(latencies, 50)) if latencies else 0.0,
            "p95_job_ms": 1e3 * float(np.percentile(latencies, 95)) if latencies else 0.0,
        }


class WorkerShard:
    """One persistent worker pair: two party-server processes, one session.

    All serving-path interaction goes through :meth:`run_job`; the shard is
    handed to exactly one dispatcher thread at a time (via the pool's idle
    queue), and an internal lock guards against misuse beyond that.
    """

    def __init__(
        self,
        index: int,
        models: Dict[str, ServableModel],
        base_seed: int,
        ring: FixedPointRing = DEFAULT_RING,
        host: str = "127.0.0.1",
        timeout: float = 300.0,
        link_latency: float = 0.0,
        warm_batch_sizes: Tuple[int, ...] = (),
        provision_pools: int = 0,
        low_water: int = 1,
        high_water: int = 3,
        verify: bool = True,
        coalesce_rounds: bool = True,
        lower_local_compute: bool = True,
        fault_plans: Optional[Dict[int, FaultPlan]] = None,
        initial_counters: Optional[Dict[Tuple[str, int], int]] = None,
        initial_job_id: int = 0,
        factory_address: Optional[Tuple[str, int]] = None,
        factory_announce_ahead: int = 4,
        heartbeat_interval: float = 1.0,
        heartbeat_deadline: float = 0.0,
    ) -> None:
        self.index = index
        self.models = models
        self.base_seed = base_seed
        self.ring = ring
        self.host = host
        self.timeout = timeout
        self.alive = False
        self.stats = ShardStats()
        self.final_server_stats: Dict[int, ServerStats] = {}
        self._lock = threading.Lock()
        #: seconds of heartbeat silence after which a party counts as wedged
        #: (0 disables enforcement — only the hard ``timeout`` applies).
        #: Enforced only once a party has heartbeat at least once, so a slow
        #: boot (plan compilation, provisioning) never trips it.
        self.heartbeat_deadline = heartbeat_deadline
        self._poll_interval = (
            min(0.25, heartbeat_deadline / 4) if heartbeat_deadline > 0 else 0.5
        )
        # _recv and the supervisor's poll_heartbeats both read the pipes;
        # per-party locks serialize them, and messages a heartbeat sweep
        # pulls out from under a dispatcher are pushed back here (checked
        # before the pipe, preserving order).
        self._pipe_locks = [threading.Lock(), threading.Lock()]
        self._pushback: List[Deque] = [deque(), deque()]
        self.last_heartbeat: List[Optional[Heartbeat]] = [None, None]
        self._last_beat_mono: List[Optional[float]] = [None, None]
        # A replacement for a dead shard inherits its predecessor's counters
        # (and base seed), so the slot's job-seed stream continues exactly
        # where the fault interrupted it — later jobs still match the
        # fault-free run bit for bit.
        self._counters: Dict[Tuple[str, int], int] = dict(initial_counters or {})
        self._next_job_id = initial_job_id
        self._pipes: List = []
        self._processes: List[mp.Process] = []

        config = ServerConfig(
            base_seed=base_seed,
            models={name: servable.spec for name, servable in models.items()},
            weights={name: servable.weights for name, servable in models.items()},
            warm_batch_sizes=tuple(warm_batch_sizes),
            provision_pools=provision_pools,
            low_water=low_water,
            high_water=high_water,
            ring=ring,
            verify=verify,
            coalesce_rounds=coalesce_rounds,
            lower_local_compute=lower_local_compute,
            fault_plans=dict(fault_plans) if fault_plans else None,
            factory_address=factory_address,
            factory_announce_ahead=factory_announce_ahead,
            heartbeat_interval=heartbeat_interval,
        )
        # Party 0 binds an ephemeral port itself and announces the
        # kernel-assigned number before party 1 boots — race-free even when
        # many pools boot shards concurrently (e.g. parallel CI jobs).
        port = 0
        try:
            for party in (0, 1):
                parent_conn, child_conn = mp.Pipe()
                process = mp.Process(
                    target=run_party_server,
                    args=(child_conn, party, host, port),
                    kwargs={"timeout": timeout, "link_latency": link_latency},
                    name=f"shard{index}-party{party}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                parent_conn.send(config)
                self._pipes.append(parent_conn)
                self._processes.append(process)
                if party == 0:
                    announcement = self._recv(0, timeout)
                    if (
                        not isinstance(announcement, tuple)
                        or len(announcement) != 2
                        or announcement[0] != "bound-port"
                    ):
                        raise ShardFailure(
                            f"shard {index} party 0 announced {announcement!r}, "
                            "expected its bound port"
                        )
                    port = int(announcement[1])
            for party in (0, 1):
                ready = self._recv(party, timeout)
                if ready != "ready":
                    raise ShardFailure(
                        f"shard {index} party {party} failed to boot: {ready!r}"
                    )
        except Exception:
            self.kill()
            raise
        self.alive = True

    # -- control-pipe plumbing ---------------------------------------------- #
    def _recv(self, party: int, timeout: float):
        """Receive the next non-heartbeat message from one party.

        Polls in short slices instead of one long block: heartbeat frames
        interleaved with the reply are absorbed (refreshing the party's
        last-seen time), and a party whose heartbeats go silent for longer
        than ``heartbeat_deadline`` raises :class:`HeartbeatMiss` carrying
        the last liveness evidence — surfacing a wedged worker in seconds
        instead of an opaque ``timeout``-long stall.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._pipe_locks[party]:
                if self._pushback[party]:
                    message = self._pushback[party].popleft()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ShardFailure(
                            f"shard {self.index} party {party} did not answer "
                            f"within {timeout:.0f}s"
                        )
                    try:
                        if not self._pipes[party].poll(
                            min(remaining, self._poll_interval)
                        ):
                            self._check_heartbeat_deadline(party)
                            continue
                        message = self._pipes[party].recv()
                    except ShardFailure:
                        raise
                    except (EOFError, OSError) as exc:
                        raise ShardFailure(
                            f"shard {self.index} party {party} pipe broke: {exc}"
                        ) from exc
            if isinstance(message, Heartbeat):
                self._note_heartbeat(party, message)
                continue
            if isinstance(message, BaseException):
                raise ShardFailure(
                    f"shard {self.index} party {party} failed: {message}"
                ) from message
            return message

    def _note_heartbeat(self, party: int, beat: Heartbeat) -> None:
        with self._lock:
            self.last_heartbeat[party] = beat
            self._last_beat_mono[party] = time.monotonic()

    def _check_heartbeat_deadline(self, party: int) -> None:
        if self.heartbeat_deadline <= 0:
            return
        with self._lock:
            last_mono = self._last_beat_mono[party]
            beat = self.last_heartbeat[party]
        if last_mono is None:
            return  # never heartbeat yet (booting, or emission disabled)
        silence = time.monotonic() - last_mono
        if silence <= self.heartbeat_deadline:
            return
        raise HeartbeatMiss(
            f"shard {self.index} party {party} missed its heartbeat deadline "
            f"({silence:.1f}s > {self.heartbeat_deadline:.1f}s silent; last "
            f"seen at {beat.timestamp:.3f} in job "
            f"{beat.job_id if beat.job_id is not None else '<idle>'} after "
            f"{beat.round_index} round frames)",
            party=party,
            last_seen=beat.timestamp,
            job_id=beat.job_id,
            round_index=beat.round_index,
        )

    def poll_heartbeats(self) -> Dict[int, Optional[float]]:
        """Drain pending heartbeat frames without blocking any dispatcher.

        Called periodically by the supervisor so idle shards' liveness stays
        fresh (and their pipes never fill with unread frames).  Per-party
        locks are taken non-blockingly: a dispatcher already on the pipe
        absorbs heartbeats itself.  Non-heartbeat messages encountered are
        pushed back for the dispatcher, in order.  Returns the current
        heartbeat ages (see :meth:`heartbeat_ages`).
        """
        if self.alive:
            for party in (0, 1):
                lock = self._pipe_locks[party]
                if not lock.acquire(blocking=False):
                    continue
                try:
                    conn = self._pipes[party]
                    while conn.poll(0):
                        message = conn.recv()
                        if isinstance(message, Heartbeat):
                            self._note_heartbeat(party, message)
                        else:
                            self._pushback[party].append(message)
                except (EOFError, OSError):
                    pass  # process death is the supervisor's other signal
                finally:
                    lock.release()
        return self.heartbeat_ages()

    def heartbeat_ages(self) -> Dict[int, Optional[float]]:
        """Seconds since each party's last heartbeat (None = never seen)."""
        now = time.monotonic()
        with self._lock:
            return {
                party: (now - mono if mono is not None else None)
                for party, mono in enumerate(self._last_beat_mono)
            }

    def _send(self, party: int, message) -> None:
        try:
            self._pipes[party].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardFailure(
                f"shard {self.index} party {party} pipe broke: {exc}"
            ) from exc

    # -- serving path --------------------------------------------------------- #
    def run_job(
        self,
        model: str,
        spec: ModelSpec,
        inputs: np.ndarray,
        ticket: Optional[JobTicket] = None,
    ) -> PoolBatchResult:
        """Execute one batch on this shard's persistent worker pair.

        ``ticket`` replays a job that already ran (or started) elsewhere:
        the counter and session seed are taken from the ticket instead of
        this shard's own stream, so the logits come out bit-identical to
        the original attempt.  Without a ticket the shard mints one from
        its deterministic counter stream.
        """
        if not self.alive:
            raise ShardFailure(f"shard {self.index} is not alive")
        inputs = np.asarray(inputs, dtype=np.float64)
        batch_size = int(inputs.shape[0])
        start = time.perf_counter()
        if ticket is None:
            with self._lock:
                key = (model, batch_size)
                counter = self._counters.get(key, 0)
                self._counters[key] = counter + 1
            seed = derive_job_seed(self.base_seed, model, batch_size, counter)
            ticket = JobTicket(
                model=model, batch_size=batch_size, counter=counter, seed=seed
            )
        else:
            # replay: never re-issue the replayed counter on this shard
            with self._lock:
                key = (ticket.model, ticket.batch_size)
                self._counters[key] = max(
                    self._counters.get(key, 0), ticket.counter + 1
                )
        try:
            with self._lock:
                job_id = self._next_job_id
                self._next_job_id += 1
            # Client role: secret-share the batch with the job's session seed
            # (rng = seed + 1, the TwoPartyContext convention, so the session
            # is bit-identical to the in-process engine at the same seed).
            client_rng = np.random.default_rng(ticket.seed + 1)
            shared = share(inputs, self.ring, client_rng)
            for party, input_share in ((0, shared.share0), (1, shared.share1)):
                self._send(
                    party,
                    JobRequest(
                        job_id=job_id,
                        model=model,
                        batch_size=batch_size,
                        counter=ticket.counter,
                        input_share=input_share,
                        seed=ticket.seed,
                    ),
                )
            replies = {
                party: self._recv(party, self.timeout) for party in (0, 1)
            }
            if all(isinstance(r, JobFailed) for r in replies.values()):
                # job-scoped rejection (both parties, pre-wire): the shard
                # pair is healthy and keeps serving
                raise ValueError(
                    f"shard {self.index} rejected the job: {replies[0].error}"
                )
            reports: Dict[int, JobReport] = {}
            for party, message in replies.items():
                if not isinstance(message, JobReport):
                    raise ShardFailure(
                        f"shard {self.index} party {party}: expected a "
                        f"JobReport, got {type(message).__name__}"
                    )
                reports[party] = message
            self._cross_check(reports)
        except ShardFailure as exc:
            exc.ticket = ticket
            self.alive = False
            with self._lock:
                self.stats.failures += 1
            raise
        logits = self.ring.decode(
            self.ring.add(reports[0].logit_share, reports[1].logit_share)
        )
        wall = time.perf_counter() - start
        payload_bytes = sum(reports[p].payload_bytes_sent for p in (0, 1))
        # both parties log the same full conversation, so one party's
        # unpacked total is the job's (equality enforced by _cross_check)
        unpacked_bytes = reports[0].unpacked_payload_bytes
        # parties compute concurrently, so the job's compute latency is the
        # slower party's; their fused-call counts match by construction
        cpu_ns = max(reports[p].cpu_time_ns for p in (0, 1))
        fused_calls = reports[0].fused_kernel_calls
        with self._lock:
            self.stats.jobs_executed += 1
            self.stats.queries_served += batch_size
            self.stats.busy_seconds += wall
            self.stats.job_latencies.append(wall)
            self.stats.pool_hits += sum(reports[p].pool_hit for p in (0, 1))
            self.stats.pool_misses += sum(not reports[p].pool_hit for p in (0, 1))
            self.stats.payload_bytes += payload_bytes
            self.stats.unpacked_payload_bytes += unpacked_bytes
            self.stats.cpu_time_ns += cpu_ns
            self.stats.fused_kernel_calls += fused_calls
        return PoolBatchResult(
            logits=logits,
            model=model,
            batch_size=batch_size,
            seed=reports[0].seed,
            shard=self.index,
            wall_seconds=wall,
            online_seconds=max(reports[p].online_seconds for p in (0, 1)),
            payload_bytes_on_wire=payload_bytes,
            pool_hits=sum(reports[p].pool_hit for p in (0, 1)),
            pool_misses=sum(not reports[p].pool_hit for p in (0, 1)),
            worker_pids=(reports[0].pid, reports[1].pid),
            unpacked_payload_bytes=unpacked_bytes,
            cpu_time_ns=cpu_ns,
            fused_kernel_calls=fused_calls,
        )

    def _cross_check(self, reports: Dict[int, JobReport]) -> None:
        r0, r1 = reports[0], reports[1]
        if r0.seed != r1.seed:
            raise ShardFailure(
                f"shard {self.index}: parties derived different job seeds "
                f"({r0.seed} vs {r1.seed})"
            )
        if (
            r0.payload_bytes_sent != r1.payload_bytes_received
            or r1.payload_bytes_sent != r0.payload_bytes_received
        ):
            raise ShardFailure(
                f"shard {self.index}: per-job wire asymmetry between parties"
            )
        if r0.communication_bytes != r1.communication_bytes:
            raise ShardFailure(
                f"shard {self.index}: parties logged different online bytes"
            )
        if r0.unpacked_payload_bytes != r1.unpacked_payload_bytes:
            raise ShardFailure(
                f"shard {self.index}: parties logged different unpacked byte "
                "equivalents — the packed accounting diverged"
            )

    def stats_snapshot(self) -> Dict[str, object]:
        """A consistent copy of the shard stats (appended to concurrently)."""
        with self._lock:
            return self.stats.snapshot()

    def counters_snapshot(self) -> Dict[Tuple[str, int], int]:
        """The per-key job counters — a replacement shard inherits these."""
        with self._lock:
            return dict(self._counters)

    def next_job_id_snapshot(self) -> int:
        with self._lock:
            return self._next_job_id

    def provision(self, model: str, batch_size: int, count: int) -> Dict[int, ProvisionReport]:
        """Synchronously top up both parties' pool buffers for one key."""
        if not self.alive:
            raise ShardFailure(f"shard {self.index} is not alive")
        request = ProvisionRequest(model=model, batch_size=batch_size, count=count)
        for party in (0, 1):
            self._send(party, request)
        reports = {party: self._recv(party, self.timeout) for party in (0, 1)}
        self._absorb_factory_counters(reports.values())
        return reports

    def _absorb_factory_counters(self, sources) -> None:
        """Refresh factory counters from provision reports / final stats.

        The reported values are lifetime totals per party, so they replace
        (not increment) the shard's view.
        """
        totals = [0, 0]
        depth = -1
        for report in sources:
            totals[0] += getattr(report, "pools_from_factory", 0)
            totals[1] += getattr(report, "factory_fallbacks", 0)
            depth = max(depth, getattr(report, "factory_inventory_depth", -1))
        with self._lock:
            self.stats.pools_from_factory = totals[0]
            self.stats.factory_fallbacks = totals[1]
            self.stats.factory_inventory_depth = depth

    # -- lifecycle ------------------------------------------------------------ #
    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful stop: wire shutdown handshake, then join the processes."""
        if self.alive:
            try:
                for party in (0, 1):
                    self._send(party, ShutdownRequest())
                for party in (0, 1):
                    stats = self._recv(party, timeout)
                    if isinstance(stats, ServerStats):
                        self.final_server_stats[party] = stats
                if len(self.final_server_stats) == 2:
                    self._absorb_factory_counters(self.final_server_stats.values())
            except ShardFailure:
                pass
        self.alive = False
        for process in self._processes:
            process.join(timeout=timeout)
        self.kill()

    def kill(self) -> None:
        """Hard stop: terminate whatever is still running.

        Escalates SIGTERM → SIGKILL: a *stopped* process (SIGSTOP — the
        wedged-worker chaos case) leaves SIGTERM pending forever, so after a
        grace period the process is killed outright.  Eviction must never
        wedge the evictor.
        """
        self.alive = False
        for conn in self._pipes:
            try:
                conn.close()
            except OSError:
                pass
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                try:
                    # a *stopped* process (SIGSTOP) leaves SIGTERM pending
                    # forever; waking it delivers the termination now
                    os.kill(process.pid, signal.SIGCONT)
                except (ProcessLookupError, OSError):
                    pass
                process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)

    @property
    def processes(self) -> List[mp.Process]:
        return list(self._processes)


class _PoolFrontend(BatchingFrontend):
    """A BatchingFrontend whose batches execute on the shard pool."""

    def __init__(self, pool: "ShardedServingPool", **kwargs) -> None:
        self._pool = pool
        super().__init__(**kwargs)

    def _dispatch_batch(self, model: str, batch: List[_PendingQuery]) -> None:
        # Hand off to a pool worker thread so the coalescing loop keeps
        # draining the queue while shards execute concurrently.
        try:
            self._pool._executor.submit(self._execute_batch, model, batch)
        except RuntimeError:
            # Executor already shut down (close() raced a slow drain): run
            # inline so every accepted query still resolves exactly once —
            # _execute_batch converts any backend failure into failed
            # futures rather than letting them hang.
            self._execute_batch(model, batch)

    def _run_batch(
        self, model: str, servable: ServableModel, inputs: np.ndarray
    ) -> BatchOutcome:
        result = self._pool._run_on_shard(model, servable.spec, inputs)
        return BatchOutcome(
            logits=result.logits,
            online_bytes_per_query=result.payload_bytes_on_wire / max(result.batch_size, 1),
            shard=result.shard,
            job_seed=result.seed,
        )


class ShardedServingPool:
    """N persistent worker pairs behind a coalescing frontend.

    Args:
        models: the deployable model zoo, keyed by the name clients use.
        num_shards: worker pairs to boot (two OS processes each, spawned
            once — the serving path never spawns).
        max_batch / max_wait: the frontend's coalescing knobs.
        provision_pools: randomness pools to pre-buffer per warm key at
            boot; each party's background provisioner keeps refilling
            between ``low_water`` and ``high_water`` afterwards.
        warm_batch_sizes: batch sizes to compile/provision ahead of traffic
            (defaults to ``(1, max_batch)``).
        link_latency: one-way seconds injected per frame on the inter-party
            link (capacity planning for LAN/WAN-like deployments).
        seed: base seed; job seeds derive deterministically from it.
        max_job_retries: transient-fault budget per batch — a job whose
            shard dies mid-flight is replayed (same ticket, same seed) on
            another or respawned shard up to this many extra attempts
            before the client future is allowed to fail.  ``0`` disables
            both replay and auto-respawn (the legacy evict-only
            semantics, paired with manual :meth:`restart_shard`).
        retry_backoff: seconds slept before attempt ``n`` retries
            (``retry_backoff * n``, linear).
        fault_plans: scripted chaos schedules, ``{shard index: {party:
            FaultPlan}}`` — applied only to the shard slot's *initial*
            boot; replacements come up clean so a bounded retry budget
            always suffices for a bounded schedule.
        link_shape: a shaping-only :class:`FaultPlan` (latency/jitter/
            bandwidth; no scripted faults) applied to both parties of
            every boot, including replacements — the degraded-network
            regime of the scaling benchmark.
        factory_address: optional ``(host, port)`` of a randomness-factory
            server.  Each party server then provisions pools by fetching
            its party-restricted buffers from the factory inventory,
            falling back to local cold generation (same seed, bit-identical
            material) when the factory is unreachable or misses.
        factory_announce_ahead: upcoming job seeds party 0 advertises to
            the factory per provisioned key, so the producer generates
            bundles ahead of demand.
    """

    def __init__(
        self,
        models: Dict[str, ServableModel],
        num_shards: int = 2,
        max_batch: int = 8,
        max_wait: float = 0.01,
        provision_pools: int = 2,
        warm_batch_sizes: Optional[Tuple[int, ...]] = None,
        low_water: int = 1,
        high_water: int = 3,
        link_latency: float = 0.0,
        seed: int = 0,
        ring: Optional[FixedPointRing] = None,
        host: str = "127.0.0.1",
        job_timeout: float = 300.0,
        verify: bool = True,
        coalesce_rounds: bool = True,
        lower_local_compute: bool = True,
        max_job_retries: int = 2,
        retry_backoff: float = 0.05,
        fault_plans: Optional[Dict[int, Dict[int, FaultPlan]]] = None,
        link_shape: Optional[FaultPlan] = None,
        factory_address: Optional[Tuple[str, int]] = None,
        factory_announce_ahead: int = 4,
        max_shards: Optional[int] = None,
        heartbeat_interval: float = 1.0,
        heartbeat_deadline: float = 0.0,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if max_job_retries < 0:
            raise ValueError(f"max_job_retries must be >= 0, got {max_job_retries}")
        if max_shards is not None and max_shards < num_shards:
            raise ValueError(
                f"max_shards ({max_shards}) must be >= num_shards ({num_shards})"
            )
        if link_shape is not None and link_shape.drops:
            raise ValueError(
                "link_shape must be shaping-only (no drop_at_round); put "
                "scripted faults in fault_plans instead"
            )
        self.models = dict(models)
        self.num_shards = num_shards
        self.ring = ring or DEFAULT_RING
        self.seed = seed
        self.host = host
        self.job_timeout = job_timeout
        self.link_latency = link_latency
        self.verify = verify
        self.coalesce_rounds = coalesce_rounds
        self.lower_local_compute = lower_local_compute
        self.low_water = low_water
        self.high_water = high_water
        self.provision_pools = provision_pools
        self.warm_batch_sizes: Tuple[int, ...] = (
            tuple(warm_batch_sizes) if warm_batch_sizes is not None else (1, max_batch)
        )
        self.max_job_retries = max_job_retries
        self.retry_backoff = retry_backoff
        self.fault_plans = dict(fault_plans or {})
        self.link_shape = link_shape
        self.factory_address = tuple(factory_address) if factory_address else None
        self.factory_announce_ahead = factory_announce_ahead
        self.max_shards = max_shards if max_shards is not None else num_shards
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_deadline = heartbeat_deadline
        self.processes_spawned = 0
        self.shards_booted = 0
        self.jobs_retried = 0
        self.jobs_recovered = 0
        self.retries_exhausted = 0
        self.shards_respawned = 0
        self.shards_retired = 0
        self._shards: List[Optional[WorkerShard]] = []
        #: gracefully-retired shards, kept so lifetime aggregates never drop
        self._retired: List[WorkerShard] = []
        self._restarting: set = set()
        self._respawn_threads: List[threading.Thread] = []
        self._idle: "Queue[WorkerShard]" = Queue()
        self._shard_lock = threading.Lock()
        self._closed = False
        self._rejecting = False
        # sized for the autoscaled ceiling, so added shards actually add
        # dispatch concurrency instead of queueing behind a static cap
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_shards, thread_name_prefix="pool-shard"
        )
        try:
            for index in range(num_shards):
                shard = self._boot_shard(index)
                # register before enqueueing: live_shards must see the shard
                # no later than any dispatcher that pulls it from the queue
                self._shards.append(shard)
                self._idle.put(shard)
        except Exception:
            self.close()
            raise
        self.frontend = _PoolFrontend(
            self,
            models=self.models,
            max_batch=max_batch,
            max_wait=max_wait,
            provision_pools=0,  # provisioning lives in the party servers
            seed=seed,
            ring=self.ring,
        )

    # -- shard management ----------------------------------------------------- #
    def _shard_fault_plans(self, index: int, inject: bool) -> Optional[Dict[int, FaultPlan]]:
        """The per-party transport plans of one boot of a shard slot.

        Scripted chaos plans fire only when ``inject`` is true (the slot's
        initial boot); permanent link shaping applies to every boot, so a
        replacement shard serves over the same degraded link — just without
        the scripted fault that killed its predecessor.
        """
        plans: Dict[int, FaultPlan] = dict(self.fault_plans.get(index, {})) if inject else {}
        if self.link_shape is not None:
            for party in (0, 1):
                plans.setdefault(party, self.link_shape)
        return plans or None

    def _boot_shard(
        self,
        index: int,
        base_seed: Optional[int] = None,
        initial_counters: Optional[Dict[Tuple[str, int], int]] = None,
        initial_job_id: int = 0,
        inject: bool = True,
    ) -> WorkerShard:
        shard = WorkerShard(
            index=index,
            models=self.models,
            # distinct seed stream per shard slot *and* per boot generation,
            # so a restarted shard never replays a previous incarnation's
            # jobs — unless the caller pins the predecessor's base_seed to
            # *continue* its stream (the retry/replay respawn path)
            base_seed=(
                base_seed
                if base_seed is not None
                else self.seed + 7919 * index + 104_729 * self.shards_booted
            ),
            ring=self.ring,
            host=self.host,
            timeout=self.job_timeout,
            link_latency=self.link_latency,
            warm_batch_sizes=self.warm_batch_sizes,
            provision_pools=self.provision_pools,
            low_water=self.low_water,
            high_water=self.high_water,
            verify=self.verify,
            coalesce_rounds=self.coalesce_rounds,
            lower_local_compute=self.lower_local_compute,
            fault_plans=self._shard_fault_plans(index, inject),
            initial_counters=initial_counters,
            initial_job_id=initial_job_id,
            factory_address=self.factory_address,
            factory_announce_ahead=self.factory_announce_ahead,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_deadline=self.heartbeat_deadline,
        )
        self.processes_spawned += 2
        self.shards_booted += 1
        return shard

    @property
    def live_shards(self) -> int:
        with self._shard_lock:
            return sum(1 for s in self._shards if s is not None and s.alive)

    def shards_view(self) -> List[WorkerShard]:
        """A consistent snapshot of the currently-registered shards."""
        with self._shard_lock:
            return [s for s in self._shards if s is not None]

    def booting_shards(self) -> int:
        """Shard slots with a boot (respawn or scale-up) in progress."""
        with self._shard_lock:
            return len(self._restarting)

    def add_shard(self, wait: bool = True) -> Optional[int]:
        """Grow the pool by one freshly-booted shard pair (autoscale-up).

        The new slot gets its own seed stream (it has no predecessor to
        continue).  With ``wait=False`` the boot happens on a background
        thread and the call returns immediately — the supervisor's sweep
        must not stall behind a multi-second boot.  Returns the new slot
        index (``None`` when deferred to a thread or the pool is closed).
        """
        with self._shard_lock:
            if self._closed:
                return None
            index = len(self._shards)
            self._shards.append(None)  # reserve the slot
            self._restarting.add(index)

        def _boot() -> Optional[int]:
            try:
                shard = self._boot_shard(index, inject=False)
            except Exception:
                with self._shard_lock:
                    self._restarting.discard(index)
                return None
            with self._shard_lock:
                closed = self._closed
                if not closed:
                    self._shards[index] = shard
                self._restarting.discard(index)
            if closed:
                shard.kill()
                return None
            self._idle.put(shard)
            return index

        if wait:
            return _boot()
        thread = threading.Thread(
            target=_boot, name=f"scale-up-shard{index}", daemon=True
        )
        with self._shard_lock:
            self._respawn_threads = [
                t for t in self._respawn_threads if t.is_alive()
            ]
            self._respawn_threads.append(thread)
        thread.start()
        return None

    def retire_shard(self) -> Optional[int]:
        """Shrink the pool by one *idle* shard (autoscale-down).

        Claims a shard from the idle queue (never preempts a running job),
        removes it from the serving rotation, and shuts it down gracefully
        on a background thread.  Refuses to retire the last live shard.
        Returns the retired slot index, or ``None`` if nothing could be
        retired without waiting.
        """
        try:
            shard = self._idle.get_nowait()
        except Empty:
            return None
        if not shard.alive:
            return None  # evicted while queued; its entry is consumed anyway
        with self._shard_lock:
            live = sum(1 for s in self._shards if s is not None and s.alive)
            if self._closed or live <= 1:
                self._idle.put(shard)
                return None
            self._shards[shard.index] = None
            self._retired.append(shard)
            self.shards_retired += 1
        thread = threading.Thread(
            target=shard.shutdown, name=f"retire-shard{shard.index}", daemon=True
        )
        with self._shard_lock:
            self._respawn_threads = [
                t for t in self._respawn_threads if t.is_alive()
            ]
            self._respawn_threads.append(thread)
        thread.start()
        return shard.index

    def restart_shard(self, index: int) -> None:
        """Replace an evicted shard with a freshly booted worker pair."""
        with self._shard_lock:
            if index < 0 or index >= len(self._shards):
                raise IndexError(f"no shard slot {index}")
            old = self._shards[index]
            if old is not None and old.alive:
                raise RuntimeError(f"shard {index} is still alive")
            if index in self._restarting:
                raise RuntimeError(f"shard {index} restart already in progress")
            self._restarting.add(index)
        try:
            if old is not None:
                old.kill()
            # a manual restart is a clean slate: fresh seed stream, and any
            # scripted chaos plan of the slot's first boot stays spent
            shard = self._boot_shard(index, inject=False)
            with self._shard_lock:
                self._shards[index] = shard
            # enqueue only after the slot is registered, so live_shards
            # cannot report 0 while the replacement is idle and serviceable
            self._idle.put(shard)
        finally:
            with self._shard_lock:
                self._restarting.discard(index)

    def _respawn_shard_async(self, dead: WorkerShard) -> None:
        """Boot a replacement for a dead shard without blocking the retry.

        The replacement continues the predecessor's seed stream (inherited
        base seed, counters and job ids), so jobs dispatched to the slot
        after recovery still derive the same session seeds the fault-free
        run would have — the whole serving history stays replayable.
        """
        index = dead.index
        with self._shard_lock:
            if self._closed or index in self._restarting:
                return
            self._restarting.add(index)
        base_seed = dead.base_seed
        counters = dead.counters_snapshot()
        next_job_id = dead.next_job_id_snapshot()

        def _boot() -> None:
            try:
                replacement = self._boot_shard(
                    index,
                    base_seed=base_seed,
                    initial_counters=counters,
                    initial_job_id=next_job_id,
                    inject=False,
                )
            except Exception:
                with self._shard_lock:
                    self._restarting.discard(index)
                return
            with self._shard_lock:
                closed = self._closed
                if not closed:
                    self._shards[index] = replacement
                    self.shards_respawned += 1
                self._restarting.discard(index)
            if closed:
                replacement.kill()
            else:
                self._idle.put(replacement)

        thread = threading.Thread(
            target=_boot, name=f"respawn-shard{index}", daemon=True
        )
        with self._shard_lock:
            self._respawn_threads = [
                t for t in self._respawn_threads if t.is_alive()
            ]
            self._respawn_threads.append(thread)
        thread.start()

    def _acquire_shard(self) -> WorkerShard:
        deadline = time.monotonic() + self.job_timeout
        dead_pool_since: Optional[float] = None
        while True:
            if self._rejecting:
                # the close() drain window is over: fail promptly instead of
                # waiting out job_timeout on a pool that is going away
                raise PoolShutdown(
                    "serving pool shut down while the batch was waiting "
                    "for a shard"
                )
            if self.live_shards == 0:
                with self._shard_lock:
                    restarting = bool(self._restarting)
                if restarting:
                    # a replacement pair is booting; keep waiting for it
                    dead_pool_since = None
                else:
                    # zero live and nothing booting *yet*: the dispatcher or
                    # supervisor that saw the death may not have registered
                    # the respawn — only give up once the state persists
                    now = time.monotonic()
                    if dead_pool_since is None:
                        dead_pool_since = now
                    elif now - dead_pool_since > 2.0:
                        raise RuntimeError(
                            "no live shards remain in the serving pool"
                        )
            else:
                dead_pool_since = None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"no shard became idle within {self.job_timeout:.0f}s"
                )
            try:
                shard = self._idle.get(timeout=min(remaining, 0.5))
            except Empty:
                continue
            if shard.alive:
                return shard
            # evicted while queued; drop it and keep looking

    def _run_on_shard(
        self, model: str, spec: ModelSpec, inputs: np.ndarray
    ) -> PoolBatchResult:
        """Run one batch, replaying it on failures until the budget is spent.

        A shard that dies mid-job is evicted and respawned asynchronously;
        the in-flight job's ticket (counter + session seed, fixed at the
        first attempt) is replayed on the next shard that frees up, so a
        transient fault costs latency, never a client future — and the
        recovered logits are bit-identical to the fault-free run.
        """
        attempts = 0
        ticket: Optional[JobTicket] = None
        while True:
            shard = self._acquire_shard()
            try:
                result = shard.run_job(model, spec, inputs, ticket=ticket)
            except ShardFailure as exc:
                shard.kill()  # evict: never returns to the idle queue
                if self.max_job_retries > 0:
                    # heal the slot off the retry path; a zero budget keeps
                    # the legacy evict-only semantics (manual restart_shard)
                    self._respawn_shard_async(shard)
                ticket = exc.ticket or ticket
                attempts += 1
                with self._shard_lock:
                    self.jobs_retried += 1
                    if attempts > self.max_job_retries:
                        self.retries_exhausted += 1
                if attempts > self.max_job_retries:
                    raise
                time.sleep(self.retry_backoff * attempts)
                continue
            finally:
                if shard.alive:
                    self._idle.put(shard)
            if attempts:
                with self._shard_lock:
                    self.jobs_recovered += 1
            return result

    # -- client API ------------------------------------------------------------ #
    def submit(self, model: str, query: np.ndarray):
        """Enqueue one query (CHW, no batch dim); returns a future."""
        return self.frontend.submit(model, query)

    def submit_many(self, model: str, queries: np.ndarray):
        return self.frontend.submit_many(model, queries)

    def run_batch(self, model: str, inputs: np.ndarray) -> PoolBatchResult:
        """Execute one batch directly (no coalescing) on an idle shard.

        Deterministic entry point for verification: the returned result
        carries the job seed, so the in-process engine at that seed must
        reproduce ``result.logits`` bit for bit.
        """
        servable = self.models.get(model)
        if servable is None:
            raise KeyError(
                f"unknown model {model!r}; deployed: {sorted(self.models)}"
            )
        inputs = np.asarray(inputs)
        spec = servable.spec
        expected = (spec.in_channels, spec.input_size, spec.input_size)
        if inputs.ndim != 4 or tuple(inputs.shape[1:]) != expected:
            raise ValueError(
                f"model {model!r} expects a batch of shape (N, {expected[0]}, "
                f"{expected[1]}, {expected[2]}), got {inputs.shape}"
            )
        return self._run_on_shard(model, servable.spec, inputs)

    def warm_up(
        self,
        batch_sizes: Optional[Tuple[int, ...]] = None,
        count: Optional[int] = None,
        acquire_timeout: float = 5.0,
    ) -> None:
        """Synchronously top up idle shards' pool buffers.

        Holds every shard it can acquire until all are provisioned, so no
        shard is warmed twice in one call.  Best-effort under concurrent
        traffic: a shard that stays busy longer than ``acquire_timeout``
        keeps serving and is skipped (its own background provisioner still
        refills it after every job).
        """
        batch_sizes = tuple(batch_sizes) if batch_sizes else self.warm_batch_sizes
        count = count if count is not None else self.high_water
        held: List[WorkerShard] = []
        try:
            while len(held) < self.live_shards:
                try:
                    shard = self._idle.get(timeout=acquire_timeout)
                except Empty:
                    break  # the rest are busy serving; skip them
                if not shard.alive:
                    continue  # evicted while queued
                held.append(shard)
            for shard in held:
                try:
                    for model in self.models:
                        for batch_size in batch_sizes:
                            shard.provision(model, batch_size, count)
                except ShardFailure:
                    shard.kill()
        finally:
            for shard in held:
                if shard.alive:
                    self._idle.put(shard)

    # -- observability --------------------------------------------------------- #
    def stats_snapshot(self) -> Dict[str, object]:
        """Aggregate + per-shard serving statistics."""
        with self._shard_lock:
            # retired first, so a reused slot index (manual restart after a
            # retire) is reported by its live incarnation
            shards = list(self._retired) + [
                s for s in self._shards if s is not None
            ]
        per_shard = {s.index: s.stats_snapshot() for s in shards}
        heartbeat_ages = {
            s.index: s.heartbeat_ages() for s in shards if s.alive
        }
        pool_hits = sum(snap["pool_hits"] for snap in per_shard.values())
        pool_misses = sum(snap["pool_misses"] for snap in per_shard.values())
        payload_bytes = sum(snap["payload_bytes"] for snap in per_shard.values())
        unpacked_bytes = sum(
            snap["unpacked_payload_bytes"] for snap in per_shard.values()
        )
        frontend = self.frontend.stats_snapshot() if hasattr(self, "frontend") else {}
        return {
            "num_shards": self.num_shards,
            "max_shards": self.max_shards,
            "live_shards": self.live_shards,
            "shards_booted": self.shards_booted,
            "shards_respawned": self.shards_respawned,
            "shards_retired": self.shards_retired,
            "heartbeat_ages": heartbeat_ages,
            "processes_spawned": self.processes_spawned,
            "jobs_retried": self.jobs_retried,
            "jobs_recovered": self.jobs_recovered,
            "retries_exhausted": self.retries_exhausted,
            "jobs_executed": sum(snap["jobs_executed"] for snap in per_shard.values()),
            "queries_served": sum(snap["queries_served"] for snap in per_shard.values()),
            "shard_failures": sum(snap["failures"] for snap in per_shard.values()),
            "pool_hits": pool_hits,
            "pool_misses": pool_misses,
            "pool_hit_rate": pool_hits / (pool_hits + pool_misses)
            if (pool_hits + pool_misses)
            else 0.0,
            "payload_bytes": payload_bytes,
            "unpacked_payload_bytes": unpacked_bytes,
            "bytes_saved_pct": _bytes_saved_pct(payload_bytes, unpacked_bytes),
            "cpu_time_ns": sum(snap["cpu_time_ns"] for snap in per_shard.values()),
            "fused_kernel_calls": sum(
                snap["fused_kernel_calls"] for snap in per_shard.values()
            ),
            "pools_from_factory": sum(
                snap["pools_from_factory"] for snap in per_shard.values()
            ),
            "factory_fallbacks": sum(
                snap["factory_fallbacks"] for snap in per_shard.values()
            ),
            "factory_inventory_depth": max(
                (snap["factory_inventory_depth"] for snap in per_shard.values()),
                default=-1,
            ),
            "frontend": frontend,
            "per_shard": per_shard,
        }

    # -- lifecycle ------------------------------------------------------------- #
    def close(self, timeout: float = 60.0) -> None:
        """Drain the frontend, stop the executor, shut every shard down.

        Batches that cannot finish within the drain window fail promptly
        with :class:`~repro.serve.frontend.PoolShutdown` instead of hanging
        on dead shards — every accepted future resolves exactly once.
        """
        if self._closed:
            return
        self._closed = True
        if hasattr(self, "frontend"):
            self.frontend.close(timeout=timeout)
        # the drain window is over: batches still waiting for a shard (e.g.
        # because shards died during the drain) now fail fast
        self._rejecting = True
        self._executor.shutdown(wait=True)
        with self._shard_lock:
            respawns = list(self._respawn_threads)
        for thread in respawns:
            thread.join(timeout=timeout)
        with self._shard_lock:
            shards = [s for s in self._shards if s is not None] + list(self._retired)
        for shard in shards:
            if shard.alive:
                shard.shutdown(timeout=timeout)
            else:
                shard.kill()

    def __enter__(self) -> "ShardedServingPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
