"""JSON (de)serialization helpers tolerant of numpy scalars/arrays."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np


class _NumpyEncoder(json.JSONEncoder):
    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, np.bool_):
            return bool(obj)
        return super().default(obj)


def save_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialize ``obj`` to JSON at ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(obj, indent=indent, cls=_NumpyEncoder))
    return path


def load_json(path: Union[str, Path]) -> Any:
    return json.loads(Path(path).read_text())
