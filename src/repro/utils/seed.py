"""Deterministic seeding across the numpy-based subsystems."""

from __future__ import annotations

import random

import numpy as np

from repro.nn import init as nn_init


def seed_everything(seed: int = 0) -> np.random.Generator:
    """Seed python, numpy's legacy RNG and the NN initializer RNG.

    Returns a fresh :class:`numpy.random.Generator` seeded with ``seed`` for
    callers that want a local generator.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32))
    nn_init.set_init_rng(seed)
    return np.random.default_rng(seed)
