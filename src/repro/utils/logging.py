"""Thin logging helper with a consistent format across the library."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger (idempotent: handlers added only once)."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger
