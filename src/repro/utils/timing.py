"""Wall-clock timing helper used by the benchmark harnesses."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start
