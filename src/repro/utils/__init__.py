"""Shared utilities: seeding, logging, serialization and timing helpers."""

from repro.utils.logging import get_logger
from repro.utils.seed import seed_everything
from repro.utils.serialization import load_json, save_json
from repro.utils.timing import Timer

__all__ = ["get_logger", "seed_everything", "save_json", "load_json", "Timer"]
