"""Compare a benchmark JSON report against a committed baseline.

CI runs the serving benchmarks on every push; this script fails the job when
a run regresses against ``benchmarks/baselines/*.json``.  Two report kinds
are understood (dispatched on the report's ``kind`` field):

``round_coalescing`` (schema ``serving-bench/v1``):

- the **qps improvement ratio** (coalesced / sequential throughput at the
  reference link latency and shard count) must not fall more than
  ``--max-qps-regression`` below the baseline's ratio.  The *ratio* is
  compared — not absolute qps — because CI machines differ wildly in speed
  while the coalescing speedup is a property of the frame schedule;
- per zoo model, the **round reduction** must not fall below the baseline's,
  and the **scheduled online rounds** and **payload bytes** must not exceed
  it — all three are deterministic compile-time quantities, so any drift is
  a real scheduling or codec regression, checked exactly;
- the zoo-wide **bit-identity** phase must have passed.

``wire_compression`` (schema ``wire-bench/v1``):

- per zoo model, **scheduled online rounds** and **packed payload bytes**
  must not exceed the baseline and the **nonlinear-layer compression ratio**
  must not fall below it (deterministic, exact);
- every zoo verification entry must be bit-identical with payload ==
  manifest.

``local_compute`` (schema ``serving-bench/v1``):

- per zoo model, the **linear-class cpu speedup** (reference / fused
  local-compute time of the matmul/im2col-dominated ops) must not fall more
  than ``--max-cpu-regression`` below the baseline's ratio, and never below
  the 1.5x acceptance floor.  Ratios are compared — not absolute
  nanoseconds — because CI machines differ wildly in speed while the fused
  lowering's speedup is a property of the kernel structure;
- the lowered runs must actually take the fused path
  (``fused_kernel_calls > 0``);
- the four-mode zoo **bit-identity** phase must have passed.

``pool_scaling`` (schema ``serving-bench/v1``):

- the **shaped-link qps scaling ratio** (1-shard -> N-shard throughput under
  the injected-latency WAN-like link) must not fall more than
  ``--max-qps-regression`` below the baseline's ratio, and likewise the
  clean-link ``scaling`` ratio when both reports carry one.  Ratios under
  the shaped link are dominated by injected sleeps, not host speed, so they
  transfer across CI machines;
- no job may exhaust its retry budget (``jobs_retried`` is allowed —
  recovery is the feature — but a shaped, drop-free link must not retry);
- the zoo-wide **bit-identity** phase must have passed when it ran.

``control_plane`` (schema ``serving-bench/v1``):

- under sustained overload of the serving daemon there must be **zero
  client-visible failures** — every submission resolves to logits or an
  explicit backpressure verdict (shed is a verdict, not a failure);
- the overload must actually engage the contract (**accepted > 0 and
  shed > 0** — a run that sheds nothing or serves nothing gates nothing);
- the **shed ratio** must stay bounded: at most the baseline's ratio plus
  an absolute slack (machine speed moves the ratio a little, a leak or an
  admission bug moves it a lot);
- the **qps plateau ratio** (accepted overload throughput / calibrated
  single-client throughput) must not fall more than
  ``--max-qps-regression`` below the baseline's ratio, and never below the
  0.5x collapse floor — overload must degrade into shedding, not into a
  throughput collapse;
- every sampled accepted job must replay **bit-identically** at its job
  seed.

``offline_throughput`` (schema ``serving-bench/v1``):

- the **minimum linear-kind generation speedup** (vectorized vs per-item
  fill of the ``triple``/``square`` groups) must not fall more than
  ``--max-offline-regression`` below the baseline's ratio, and never below
  the 3x acceptance floor.  Ratios are compared — not items/second —
  because CI machines differ wildly in speed while the vectorization win
  is a property of eliminating per-item interpreter overhead;
- per zoo model, the **manifest hash** and **material bytes** must equal
  the baseline exactly (deterministic compile-time identities — drift
  means the offline contract changed), and the vectorized **preprocess
  speedup** must not fall more than the tolerance below the baseline's;
- when the concurrency phase ran, the **online qps dip** under a
  concurrent factory producer must stay under 10% and the producer must
  have spooled at least one bundle;
- the factory-provisioned zoo **bit-identity** phase must have passed in
  every mode.

Run with:
  python tools/check_bench_regression.py current.json \\
      benchmarks/baselines/round_coalescing_2shards.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _check_deterministic_rounds_and_bytes(
    current_models: dict, baseline_models: dict, failures: list
) -> None:
    """Shared exact gate: rounds and payload bytes must not increase."""
    for model, entry in baseline_models.items():
        current_entry = current_models.get(model)
        if current_entry is None:
            failures.append(f"model {model!r} missing from current report")
            continue
        for metric in ("scheduled_online_rounds", "online_bytes"):
            if metric not in entry:
                continue
            if current_entry.get(metric, float("inf")) > entry[metric]:
                failures.append(
                    f"{model}: {metric} regressed "
                    f"{current_entry.get(metric)} > baseline {entry[metric]}"
                )


def check_round_coalescing(
    current: dict, baseline: dict, latency_key: str, max_qps_regression: float
) -> list:
    failures = []

    shards = baseline.get("config", {}).get("shards")
    if current.get("config", {}).get("shards") != shards:
        failures.append(
            f"shard count mismatch: baseline ran at {shards} shards, "
            f"current at {current.get('config', {}).get('shards')}"
        )

    # -- qps improvement ratio (machine-independent) -------------------------- #
    baseline_ratio = baseline.get("qps_improvement", {}).get(latency_key)
    current_ratio = current.get("qps_improvement", {}).get(latency_key)
    if baseline_ratio is None or current_ratio is None:
        failures.append(
            f"missing qps_improvement[{latency_key!r}]: "
            f"current={current_ratio}, baseline={baseline_ratio}"
        )
    else:
        floor = baseline_ratio * (1.0 - max_qps_regression)
        if current_ratio < floor:
            failures.append(
                f"qps improvement at {latency_key} regressed: "
                f"{current_ratio:.3f}x vs baseline {baseline_ratio:.3f}x "
                f"(floor {floor:.3f}x at {max_qps_regression:.0%} tolerance)"
            )

    # -- deterministic round reductions, rounds and payload bytes ------------- #
    for model, entry in baseline.get("rounds", {}).items():
        current_entry = current.get("rounds", {}).get(model)
        if current_entry is None:
            failures.append(f"model {model!r} missing from current rounds report")
            continue
        if current_entry["round_reduction"] < entry["round_reduction"] - 1e-9:
            failures.append(
                f"{model}: round reduction regressed "
                f"{current_entry['round_reduction']:.3f} < baseline "
                f"{entry['round_reduction']:.3f}"
            )
    _check_deterministic_rounds_and_bytes(
        current.get("rounds", {}), baseline.get("rounds", {}), failures
    )

    # -- bit identity ---------------------------------------------------------- #
    checks = current.get("zoo_bit_identity")
    if checks is not None:
        broken = [c["model"] for c in checks if not c.get("bit_identical")]
        if broken:
            failures.append(f"bit-identity broken for: {', '.join(broken)}")
    return failures


def check_wire_compression(current: dict, baseline: dict) -> list:
    failures = []
    _check_deterministic_rounds_and_bytes(
        current.get("models", {}), baseline.get("models", {}), failures
    )
    for model, entry in baseline.get("models", {}).items():
        current_entry = current.get("models", {}).get(model)
        if current_entry is None:
            continue  # already reported by the shared gate
        floor = entry.get("nonlinear_compression", 0.0)
        current_ratio = current_entry.get("nonlinear_compression", 0.0)
        if current_ratio < floor - 1e-9:
            failures.append(
                f"{model}: nonlinear compression regressed "
                f"{current_ratio:.2f}x < baseline {floor:.2f}x"
            )
    for entry in current.get("zoo_verification", []):
        if not entry.get("bit_identical"):
            failures.append(f"{entry.get('model')}: bit-identity broken")
        if not entry.get("payload_matches_manifest"):
            failures.append(
                f"{entry.get('model')}: payload does not equal the packed manifest"
            )
    return failures


#: hard floor on the per-model linear-class cpu speedup of the fused
#: lowering — the PR-6 acceptance criterion, never relaxed by tolerance
LINEAR_SPEEDUP_FLOOR = 1.5


def check_local_compute(
    current: dict, baseline: dict, max_cpu_regression: float
) -> list:
    failures = []
    for model, entry in baseline.get("cpu", {}).items():
        current_entry = current.get("cpu", {}).get(model)
        if current_entry is None:
            failures.append(f"model {model!r} missing from current cpu report")
            continue
        baseline_ratio = entry.get("linear", {}).get("speedup", 0.0)
        current_ratio = current_entry.get("linear", {}).get("speedup", 0.0)
        floor = max(
            baseline_ratio * (1.0 - max_cpu_regression), LINEAR_SPEEDUP_FLOOR
        )
        if current_ratio < floor:
            failures.append(
                f"{model}: linear-class cpu speedup regressed "
                f"{current_ratio:.2f}x vs baseline {baseline_ratio:.2f}x "
                f"(floor {floor:.2f}x at {max_cpu_regression:.0%} tolerance, "
                f"hard floor {LINEAR_SPEEDUP_FLOOR}x)"
            )
        if current_entry.get("fused_fused_kernel_calls", 0) <= 0:
            failures.append(
                f"{model}: lowered run executed zero fused kernels — the "
                "lowering pass is not engaged"
            )
    checks = current.get("zoo_bit_identity")
    if checks is not None:
        broken = [c["model"] for c in checks if not c.get("bit_identical")]
        if broken:
            failures.append(f"bit-identity broken for: {', '.join(broken)}")
    return failures


#: hard floor on the linear-kind (triple/square) vectorized generation
#: speedup — the randomness-factory acceptance criterion, never relaxed
#: by tolerance
OFFLINE_LINEAR_SPEEDUP_FLOOR = 3.0

#: ceiling on the online qps dip while a nice(19) factory producer runs
ONLINE_QPS_DIP_CEILING = 0.10


def check_offline_throughput(
    current: dict, baseline: dict, max_offline_regression: float
) -> list:
    failures = []

    # -- linear-kind generation speedup (machine-independent ratio) ----------- #
    baseline_ratio = baseline.get("min_linear_speedup", 0.0)
    current_ratio = current.get("min_linear_speedup", 0.0)
    floor = max(
        baseline_ratio * (1.0 - max_offline_regression),
        OFFLINE_LINEAR_SPEEDUP_FLOOR,
    )
    if current_ratio < floor:
        failures.append(
            f"min linear-kind generation speedup regressed "
            f"{current_ratio:.2f}x vs baseline {baseline_ratio:.2f}x "
            f"(floor {floor:.2f}x at {max_offline_regression:.0%} tolerance, "
            f"hard floor {OFFLINE_LINEAR_SPEEDUP_FLOOR}x)"
        )

    # -- per-model offline identities and preprocess speedups ------------------ #
    for model, entry in baseline.get("models", {}).items():
        current_entry = current.get("models", {}).get(model)
        if current_entry is None:
            failures.append(f"model {model!r} missing from current report")
            continue
        for metric in ("manifest_hash", "material_bytes"):
            if current_entry.get(metric) != entry.get(metric):
                failures.append(
                    f"{model}: {metric} drifted — "
                    f"{current_entry.get(metric)!r} vs baseline "
                    f"{entry.get(metric)!r} (the offline manifest contract "
                    "is deterministic; any change must re-baseline)"
                )
        baseline_speedup = entry.get("speedup", 0.0)
        current_speedup = current_entry.get("speedup", 0.0)
        speedup_floor = baseline_speedup * (1.0 - max_offline_regression)
        if current_speedup < speedup_floor:
            failures.append(
                f"{model}: vectorized preprocess speedup regressed "
                f"{current_speedup:.2f}x vs baseline {baseline_speedup:.2f}x "
                f"(floor {speedup_floor:.2f}x)"
            )

    # -- online isolation under concurrent factory generation ------------------ #
    concurrency = current.get("concurrency")
    if concurrency is not None:
        if concurrency.get("qps_dip", 1.0) >= ONLINE_QPS_DIP_CEILING:
            failures.append(
                f"online qps dipped {concurrency['qps_dip']:.1%} under "
                f"concurrent factory generation (ceiling "
                f"{ONLINE_QPS_DIP_CEILING:.0%})"
            )
        if concurrency.get("bundles_generated", 0) <= 0:
            failures.append(
                "factory producer spooled zero bundles during the "
                "concurrency phase — the isolation measurement is vacuous"
            )
    elif baseline.get("concurrency") is not None:
        failures.append(
            "baseline measured the concurrency phase but the current "
            "report skipped it"
        )

    # -- bit identity ---------------------------------------------------------- #
    checks = current.get("zoo_bit_identity")
    if checks is not None:
        for entry in checks:
            if not entry.get("bit_identical"):
                modes = entry.get("modes", {})
                diverged = [m for m, ok in modes.items() if not ok] or ["?"]
                failures.append(
                    f"{entry.get('model')}: factory-provisioned execution "
                    f"diverged in mode(s): {', '.join(diverged)}"
                )
    elif baseline.get("zoo_bit_identity") is not None:
        failures.append(
            "baseline verified zoo bit-identity but the current report "
            "skipped the phase"
        )
    return failures


def check_pool_scaling(
    current: dict, baseline: dict, max_qps_regression: float
) -> list:
    failures = []
    # -- qps scaling ratios (machine-independent) ----------------------------- #
    for block in ("shaped_scaling", "scaling"):
        baseline_block = baseline.get(block) or {}
        baseline_ratio = baseline_block.get("qps_speedup")
        if baseline_ratio is None:
            continue  # baseline did not run this regime; nothing to gate
        current_block = current.get(block) or {}
        current_ratio = current_block.get("qps_speedup")
        if current_ratio is None:
            failures.append(
                f"missing {block}.qps_speedup in current report "
                f"(baseline has {baseline_ratio:.3f}x)"
            )
            continue
        span = f"{baseline_block.get('from')} -> {baseline_block.get('to')}"
        if current_block.get("from") != baseline_block.get("from") or (
            current_block.get("to") != baseline_block.get("to")
        ):
            failures.append(
                f"{block} span mismatch: baseline measured {span}, current "
                f"{current_block.get('from')} -> {current_block.get('to')}"
            )
            continue
        floor = baseline_ratio * (1.0 - max_qps_regression)
        if current_ratio < floor:
            failures.append(
                f"{block} ({span}) regressed: {current_ratio:.3f}x vs "
                f"baseline {baseline_ratio:.3f}x (floor {floor:.3f}x at "
                f"{max_qps_regression:.0%} tolerance)"
            )

    # -- a shaped, drop-free link must serve without retries ------------------- #
    for key, path in (current.get("paths") or {}).items():
        if key.endswith("-shaped") and path.get("jobs_retried", 0) > 0:
            failures.append(
                f"{key}: {path['jobs_retried']} job(s) retried under a "
                "drop-free shaped link — shaping must never cost a retry"
            )

    # -- bit identity ---------------------------------------------------------- #
    zoo = current.get("zoo_bit_identity")
    if zoo is not None:
        broken = [
            f"{c['model']}#{c.get('repeat')}"
            for c in zoo.get("checked", [])
            if not c.get("bit_identical")
        ]
        if broken:
            failures.append(f"bit-identity broken for: {', '.join(broken)}")
        if zoo.get("per_request_process_spawns", 0) > 0:
            failures.append(
                "serving path spawned processes per request "
                f"({zoo['per_request_process_spawns']:.2f}/job) — persistent "
                "servers must serve without spawning"
            )
    return failures


#: absolute slack on the overload shed ratio over the baseline's — machine
#: speed shifts the ratio a little; an admission bug shifts it a lot
SHED_RATIO_SLACK = 0.25

#: hard floor on the overload qps plateau ratio — below this, overload is
#: collapsing throughput instead of shedding load
PLATEAU_RATIO_FLOOR = 0.5


def check_control_plane(
    current: dict, baseline: dict, max_qps_regression: float
) -> list:
    failures = []
    overload = current.get("overload") or {}
    baseline_overload = baseline.get("overload") or {}

    # -- zero client-visible failures (the robustness acceptance criterion) ---- #
    if overload.get("client_failures", 1) != 0:
        messages = "; ".join(overload.get("failure_messages", [])) or "?"
        failures.append(
            f"{overload.get('client_failures')} client future(s) failed "
            f"without an explicit verdict under overload: {messages}"
        )

    # -- the contract must actually engage ------------------------------------- #
    if overload.get("accepted", 0) <= 0:
        failures.append("overload run accepted zero submissions — vacuous")
    if overload.get("shed", 0) <= 0:
        failures.append(
            "overload run shed zero submissions — the admission queue was "
            "never saturated, the backpressure gate is vacuous"
        )

    # -- bounded shed ratio ----------------------------------------------------- #
    baseline_shed = baseline_overload.get("shed_ratio", 0.0)
    current_shed = overload.get("shed_ratio", 1.0)
    ceiling = baseline_shed + SHED_RATIO_SLACK
    if current_shed > ceiling:
        failures.append(
            f"shed ratio {current_shed:.0%} exceeds baseline "
            f"{baseline_shed:.0%} + {SHED_RATIO_SLACK:.0%} slack"
        )

    # -- accepted throughput plateaus instead of collapsing --------------------- #
    baseline_plateau = baseline_overload.get("qps_plateau_ratio")
    current_plateau = overload.get("qps_plateau_ratio")
    if baseline_plateau is None or current_plateau is None:
        failures.append(
            f"missing overload.qps_plateau_ratio: current={current_plateau}, "
            f"baseline={baseline_plateau}"
        )
    else:
        floor = max(
            baseline_plateau * (1.0 - max_qps_regression), PLATEAU_RATIO_FLOOR
        )
        if current_plateau < floor:
            failures.append(
                f"qps plateau ratio regressed: {current_plateau:.2f}x vs "
                f"baseline {baseline_plateau:.2f}x (floor {floor:.2f}x at "
                f"{max_qps_regression:.0%} tolerance, collapse floor "
                f"{PLATEAU_RATIO_FLOOR}x)"
            )

    # -- bit identity of sampled accepted jobs ---------------------------------- #
    checks = current.get("bit_identity") or []
    if not checks:
        failures.append("no accepted jobs were replay-verified — vacuous")
    broken = [
        str(entry.get("job_seed"))
        for entry in checks
        if not entry.get("bit_identical")
    ]
    if broken:
        failures.append(
            f"accepted jobs diverged from the in-process engine at seed(s): "
            f"{', '.join(broken)}"
        )
    return failures


def check(
    current: dict,
    baseline: dict,
    latency_key: str,
    max_qps_regression: float,
    max_cpu_regression: float = 0.35,
    max_offline_regression: float = 0.35,
) -> list:
    failures = []
    if current.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: current {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}"
        )
        return failures
    kind = baseline.get("kind", "round_coalescing")
    if kind == "wire_compression":
        failures.extend(check_wire_compression(current, baseline))
    elif kind == "local_compute":
        failures.extend(
            check_local_compute(current, baseline, max_cpu_regression)
        )
    elif kind == "pool_scaling":
        failures.extend(
            check_pool_scaling(current, baseline, max_qps_regression)
        )
    elif kind == "offline_throughput":
        failures.extend(
            check_offline_throughput(current, baseline, max_offline_regression)
        )
    elif kind == "control_plane":
        failures.extend(
            check_control_plane(current, baseline, max_qps_regression)
        )
    else:
        failures.extend(
            check_round_coalescing(current, baseline, latency_key, max_qps_regression)
        )
    return failures


def _summary(current: dict, baseline: dict, latency_key: str) -> str:
    if baseline.get("kind") == "local_compute":
        return (
            f"min linear-class cpu speedup "
            f"{current.get('min_linear_speedup', 0.0):.2f}x "
            f"(baseline {baseline.get('min_linear_speedup', 0.0):.2f}x)"
        )
    if baseline.get("kind") == "pool_scaling":
        shaped = current.get("shaped_scaling") or {}
        baseline_shaped = baseline.get("shaped_scaling") or {}
        return (
            f"shaped-link qps scaling {shaped.get('qps_speedup', 0.0):.2f}x "
            f"(baseline {baseline_shaped.get('qps_speedup', 0.0):.2f}x), "
            f"clean scaling {current.get('scaling', {}).get('qps_speedup', 0.0):.2f}x"
        )
    if baseline.get("kind") == "control_plane":
        overload = current.get("overload") or {}
        baseline_overload = baseline.get("overload") or {}
        return (
            f"overload accepted {overload.get('accepted')}/"
            f"{overload.get('offered')} (shed {overload.get('shed_ratio', 0.0):.0%}, "
            f"baseline {baseline_overload.get('shed_ratio', 0.0):.0%}), "
            f"qps plateau {overload.get('qps_plateau_ratio', 0.0):.2f}x, "
            f"0 client failures"
        )
    if baseline.get("kind") == "offline_throughput":
        concurrency = current.get("concurrency") or {}
        dip = concurrency.get("qps_dip")
        dip_text = f"{dip:.1%}" if dip is not None else "skipped"
        return (
            f"min linear-kind generation speedup "
            f"{current.get('min_linear_speedup', 0.0):.2f}x "
            f"(baseline {baseline.get('min_linear_speedup', 0.0):.2f}x), "
            f"online qps dip {dip_text}"
        )
    if baseline.get("kind") == "wire_compression":
        return (
            f"vgg scheduled rounds {current.get('vgg_scheduled_rounds')} "
            f"(baseline {baseline.get('vgg_scheduled_rounds')}), worst "
            f"nonlinear compression "
            f"{current.get('worst_nonlinear_compression', 0.0):.2f}x"
        )
    return (
        f"qps improvement {current['qps_improvement'][latency_key]:.2f}x "
        f"(baseline {baseline['qps_improvement'][latency_key]:.2f}x), "
        f"best round reduction {current['best_round_reduction']:.1%}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="JSON report of the current run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--latency", default="5ms",
        help="qps_improvement key to compare (default: 5ms)",
    )
    parser.add_argument(
        "--max-qps-regression", type=float, default=0.20,
        help="allowed relative drop of the qps-improvement ratio (default 20%%)",
    )
    parser.add_argument(
        "--max-cpu-regression", type=float, default=0.35,
        help="allowed relative drop of the linear-class cpu-speedup ratio "
        "for local_compute reports (default 35%%; the 1.5x acceptance "
        "floor always applies)",
    )
    parser.add_argument(
        "--max-offline-regression", type=float, default=0.35,
        help="allowed relative drop of the offline generation/preprocess "
        "speedup ratios for offline_throughput reports (default 35%%; the "
        "3x linear-kind acceptance floor always applies)",
    )
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    failures = check(
        current,
        baseline,
        args.latency,
        args.max_qps_regression,
        args.max_cpu_regression,
        args.max_offline_regression,
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"bench regression check passed against {Path(args.baseline).name}: "
        + _summary(current, baseline, args.latency)
    )


if __name__ == "__main__":
    main()
