"""Compare a bench_round_coalescing JSON report against a committed baseline.

CI runs the round-coalescing benchmark on every push; this script fails the
job when the run regresses against ``benchmarks/baselines/*.json``:

- the **qps improvement ratio** (coalesced / sequential throughput at the
  reference link latency and shard count) must not fall more than
  ``--max-qps-regression`` below the baseline's ratio.  The *ratio* is
  compared — not absolute qps — because CI machines differ wildly in speed
  while the coalescing speedup is a property of the frame schedule;
- the **round reduction** of every zoo model must not fall below the
  baseline's (rounds are deterministic compile-time quantities, so any drop
  is a real scheduling regression, checked exactly);
- the zoo-wide **bit-identity** phase must have passed.

Run with:
  python tools/check_bench_regression.py current.json \\
      benchmarks/baselines/round_coalescing_2shards.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(current: dict, baseline: dict, latency_key: str, max_qps_regression: float) -> list:
    failures = []

    if current.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: current {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}"
        )

    shards = baseline.get("config", {}).get("shards")
    if current.get("config", {}).get("shards") != shards:
        failures.append(
            f"shard count mismatch: baseline ran at {shards} shards, "
            f"current at {current.get('config', {}).get('shards')}"
        )

    # -- qps improvement ratio (machine-independent) -------------------------- #
    baseline_ratio = baseline.get("qps_improvement", {}).get(latency_key)
    current_ratio = current.get("qps_improvement", {}).get(latency_key)
    if baseline_ratio is None or current_ratio is None:
        failures.append(
            f"missing qps_improvement[{latency_key!r}]: "
            f"current={current_ratio}, baseline={baseline_ratio}"
        )
    else:
        floor = baseline_ratio * (1.0 - max_qps_regression)
        if current_ratio < floor:
            failures.append(
                f"qps improvement at {latency_key} regressed: "
                f"{current_ratio:.3f}x vs baseline {baseline_ratio:.3f}x "
                f"(floor {floor:.3f}x at {max_qps_regression:.0%} tolerance)"
            )

    # -- deterministic round reductions --------------------------------------- #
    for model, entry in baseline.get("rounds", {}).items():
        current_entry = current.get("rounds", {}).get(model)
        if current_entry is None:
            failures.append(f"model {model!r} missing from current rounds report")
            continue
        if current_entry["round_reduction"] < entry["round_reduction"] - 1e-9:
            failures.append(
                f"{model}: round reduction regressed "
                f"{current_entry['round_reduction']:.3f} < baseline "
                f"{entry['round_reduction']:.3f}"
            )

    # -- bit identity ---------------------------------------------------------- #
    checks = current.get("zoo_bit_identity")
    if checks is not None:
        broken = [c["model"] for c in checks if not c.get("bit_identical")]
        if broken:
            failures.append(f"bit-identity broken for: {', '.join(broken)}")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="JSON report of the current run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--latency", default="5ms",
        help="qps_improvement key to compare (default: 5ms)",
    )
    parser.add_argument(
        "--max-qps-regression", type=float, default=0.20,
        help="allowed relative drop of the qps-improvement ratio (default 20%%)",
    )
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    failures = check(current, baseline, args.latency, args.max_qps_regression)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"bench regression check passed against {Path(args.baseline).name}: "
        f"qps improvement {current['qps_improvement'][args.latency]:.2f}x "
        f"(baseline {baseline['qps_improvement'][args.latency]:.2f}x), "
        f"best round reduction {current['best_round_reduction']:.1%}"
    )


if __name__ == "__main__":
    main()
