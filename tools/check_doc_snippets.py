"""Execute every ``python`` code block in docs/*.md against the live code.

The docs promise that their snippets run; this script keeps the promise
honest in CI.  Rules:

- fenced blocks whose info string is exactly ``python`` are executed;
- blocks in the same file share one namespace and run top-to-bottom, so a
  page can build up state (model -> engine -> result) across blocks;
- blocks marked ``python no-run`` (and non-python fences: ``json``,
  ``bash``, ...) are skipped;
- any exception fails the run, reporting file, block index and line.

Run with:  PYTHONPATH=src python tools/check_doc_snippets.py [docs_dir]
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path
from typing import List, Tuple

FENCE = re.compile(r"^```(\S*)[ \t]*(.*)$")


def extract_blocks(text: str) -> List[Tuple[int, str, str]]:
    """``(start_line, info_string, source)`` for every fenced block."""
    blocks: List[Tuple[int, str, str]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE.match(lines[i])
        if match and match.group(1):
            info = (match.group(1) + " " + match.group(2)).strip()
            start = i + 1
            body: List[str] = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append((start + 1, info, "\n".join(body)))
        i += 1
    return blocks


def run_file(path: Path) -> Tuple[int, int]:
    """Execute the runnable blocks of one markdown file; returns (run, skipped)."""
    namespace: dict = {"__name__": f"docsnippet_{path.stem}"}
    run = skipped = 0
    for start_line, info, source in extract_blocks(path.read_text(encoding="utf-8")):
        parts = info.split()
        if parts[0] != "python" or "no-run" in parts[1:]:
            skipped += 1
            continue
        t0 = time.perf_counter()
        try:
            code = compile(source, f"{path}:{start_line}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as exc:
            print(f"FAIL  {path}:{start_line}: {type(exc).__name__}: {exc}")
            raise SystemExit(1) from exc
        run += 1
        print(f"ok    {path}:{start_line} ({time.perf_counter() - t0:.2f}s)")
    return run, skipped


def main() -> None:
    docs_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("docs")
    pages = sorted(docs_dir.glob("*.md"))
    if not pages:
        raise SystemExit(f"no markdown files under {docs_dir}/")
    total_run = total_skipped = 0
    for page in pages:
        run, skipped = run_file(page)
        total_run += run
        total_skipped += skipped
    print(f"\n{total_run} snippet(s) executed, {total_skipped} skipped, "
          f"{len(pages)} page(s) checked")
    if total_run == 0:
        raise SystemExit("docs contain no runnable snippets — that is a bug")


if __name__ == "__main__":
    main()
