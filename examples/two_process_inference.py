"""Two-process private inference over localhost TCP.

The deployment story of the paper made executable: two OS processes, each
holding one share-world, jointly run a compiled inference plan over a real
socket.  The script verifies the two guarantees the networked runtime makes:

1. the socket path is **bit-identical** to the single-process compiled path
   (same seeds => same logits, to the last bit);
2. the **measured on-wire payload bytes** equal the plan manifest's static
   prediction, in each direction, at both parties.

Run with:  PYTHONPATH=src python examples/two_process_inference.py
Optionally ``--json out.json`` writes the measurements for CI artifacts.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.crypto import make_context
from repro.crypto.protocols.comparison import drelu_trace
from repro.crypto.secure_model import SecureInferenceEngine
from repro.models import build_model, export_layer_weights, get_backbone
from repro.nn.tensor import Tensor
from repro.runtime import run_two_process_inference
from repro.runtime.party import predicted_direction_bytes
from repro.utils import seed_everything


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg-tiny", help="zoo backbone name")
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--polynomial", action="store_true",
        help="replace ReLU/MaxPool with X^2act/AvgPool before running",
    )
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measurements to this JSON file")
    args = parser.parse_args()

    seed_everything(1)
    spec = get_backbone(args.model, input_size=args.input_size)
    if args.polynomial:
        spec = spec.with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):  # move BN running stats off their init values
        net(Tensor(rng.normal(size=(4, spec.in_channels, spec.input_size, spec.input_size))))
    net.eval()
    weights = export_layer_weights(net)
    queries = np.random.default_rng(7).normal(
        size=(args.batch, spec.in_channels, spec.input_size, spec.input_size)
    )

    print(f"== single-process reference (compiled path, seed {args.seed}) ==")
    engine = SecureInferenceEngine(make_context(seed=args.seed))
    plan = engine.compile(spec, batch_size=args.batch)
    pool = engine.preprocess(plan)
    reference = engine.execute(plan, weights, queries, pool=pool)
    print(f"model: {spec.name}, batch {args.batch}, "
          f"{len(plan)} plan ops, predicted online bytes {plan.online_bytes}")

    print("\n== two-process socket execution (localhost TCP) ==")
    result = run_two_process_inference(spec, weights, queries, seed=args.seed)
    bit_identical = bool(np.array_equal(result.logits, reference.logits))
    print(f"wall time: {result.wall_seconds:.2f}s "
          f"(includes process spawn + offline phase in both parties)")
    print(f"bit-identical to single-process path: {bit_identical}")
    print(f"on-wire payload bytes: {result.payload_bytes_on_wire} "
          f"(manifest predicted {plan.online_bytes}) "
          f"-> exact: {result.matches_manifest}")
    for party in (0, 1):
        report = result.reports[party]
        predicted = predicted_direction_bytes(plan, party)
        print(f"  party {party}: sent {report.payload_bytes_sent} payload bytes "
              f"(predicted {predicted}), {report.frames_sent} frames, "
              f"online {1e3 * report.online_seconds:.1f} ms, "
              f"offline {1e3 * report.offline_seconds:.1f} ms, "
              f"local compute {report.cpu_time_ns / 1e6:.1f} ms cpu")
    print(f"fused local compute: {result.fused_kernel_calls} kernel calls, "
          f"{result.cpu_time_ns / 1e6:.1f} ms cpu (max over parties)")
    print(f"framing overhead: {result.framing_overhead_bytes} bytes "
          f"({100 * result.framing_overhead_bytes / max(result.wire_bytes_on_wire, 1):.2f}% of wire traffic)")
    print(f"rounds: {result.online_rounds} (predicted {plan.online_rounds}, "
          f"sequential would be {plan.legacy_online_rounds})")
    rounds_per_drelu = drelu_trace((1,), engine.ctx.ring).scheduled_rounds
    print(f"packed wire format: {result.bytes_saved_pct:.1f}% payload saved "
          f"(unpacked equivalent {result.unpacked_payload_bytes} bytes); "
          f"{rounds_per_drelu} rounds per DReLU (log-depth comparison tree)")

    if not bit_identical or not result.matches_manifest:
        raise SystemExit("two-process execution diverged from the reference")

    if args.json_path:
        # ``serving-bench/v1``: the schema shared with bench_pool_scaling /
        # bench_serving_throughput so dashboards can ingest either benchmark
        # uniformly (documented in docs/serving.md).
        payload = {
            "schema": "serving-bench/v1",
            "kind": "two_process_inference",
            "model": spec.name,
            "batch_size": args.batch,
            "config": {
                "num_queries": args.batch,
                "seed": args.seed,
                "polynomial": bool(args.polynomial),
            },
            "bit_identical": bit_identical,
            "matches_manifest": result.matches_manifest,
            "predicted_online_bytes": plan.online_bytes,
            "payload_bytes_on_wire": result.payload_bytes_on_wire,
            "unpacked_payload_bytes": result.unpacked_payload_bytes,
            "bytes_saved_pct": result.bytes_saved_pct,
            "wire_bytes_on_wire": result.wire_bytes_on_wire,
            "framing_overhead_bytes": result.framing_overhead_bytes,
            "online_rounds": result.online_rounds,
            "rounds_per_drelu": rounds_per_drelu,
            "cpu_time_ns": result.cpu_time_ns,
            "fused_kernel_calls": result.fused_kernel_calls,
            "paths": {
                "socket_session": {
                    "queries_per_second": args.batch / result.wall_seconds,
                    "p50_latency_ms": None,
                    "p95_latency_ms": None,
                    "total_seconds": result.wall_seconds,
                },
            },
            "workers": [
                {
                    "shard": None,  # one-shot runtime: no shard pool
                    "party": party,
                    "role": "party-worker",
                    "jobs_executed": 1,
                    "online_seconds": result.reports[party].online_seconds,
                    "offline_seconds": result.reports[party].offline_seconds,
                    "payload_bytes_sent": result.reports[party].payload_bytes_sent,
                    "frames_sent": result.reports[party].frames_sent,
                    "cpu_time_ns": result.reports[party].cpu_time_ns,
                }
                for party in (0, 1)
            ],
            "wall_seconds": result.wall_seconds,
            "per_party": {
                str(party): {
                    "payload_bytes_sent": result.reports[party].payload_bytes_sent,
                    "frames_sent": result.reports[party].frames_sent,
                    "online_seconds": result.reports[party].online_seconds,
                    "offline_seconds": result.reports[party].offline_seconds,
                    "cpu_time_ns": result.reports[party].cpu_time_ns,
                    "fused_kernel_calls": result.reports[party].fused_kernel_calls,
                }
                for party in (0, 1)
            },
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote measurements to {args.json_path}")


if __name__ == "__main__":
    main()
