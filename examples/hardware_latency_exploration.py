"""Explore the FPGA 2PC latency / communication / energy model.

Reproduces the paper's hardware-side analyses without any training:

- the Fig. 1 operator breakdown of a ResNet-50 bottleneck block;
- full-network latency of the CIFAR-10 backbones, all-ReLU vs all-polynomial
  (the endpoints of Fig. 5(b));
- the Table-I view of the PASNet-A/B/C/D variants on ImageNet;
- sensitivity of the searched latency to the network bandwidth.

Run with:  python examples/hardware_latency_exploration.py
"""

from __future__ import annotations

from repro.evaluation import figure1_breakdown, render_table, table1_rows
from repro.hardware import (
    CryptoScheduler,
    EnergyModel,
    LatencyModel,
    NetworkModel,
    communication_report,
)
from repro.models import FIG5_BACKBONES, build_variant, get_backbone


def operator_breakdown() -> None:
    print("== Fig. 1: ResNet-50 bottleneck operator breakdown (ImageNet, 1 GB/s) ==")
    print(render_table(figure1_breakdown()))
    print()


def backbone_latencies() -> None:
    print("== CIFAR-10 backbones: all-ReLU vs all-polynomial (Fig. 5(b) endpoints) ==")
    scheduler = CryptoScheduler()
    rows = []
    for name in FIG5_BACKBONES:
        spec = get_backbone(name)
        poly = spec.with_all_polynomial()
        relu_ms = 1e3 * scheduler.latency_seconds(spec)
        poly_ms = 1e3 * scheduler.latency_seconds(poly)
        rows.append(
            {
                "backbone": name,
                "all-ReLU (ms)": relu_ms,
                "all-poly (ms)": poly_ms,
                "speedup": relu_ms / poly_ms,
                "ReLU elements (k)": spec.relu_count() / 1e3,
                "comm all-ReLU (MB)": communication_report(spec).total_megabytes,
            }
        )
    print(render_table(rows))
    print()


def pasnet_variants() -> None:
    print("== Table I: PASNet variants on ImageNet (measured cost columns) ==")
    print(render_table([row.as_dict() for row in table1_rows()]))
    print()


def bandwidth_sweep() -> None:
    print("== Bandwidth sensitivity of PASNet-A (ImageNet) ==")
    spec = build_variant("PASNet-A", "imagenet")
    energy = EnergyModel()
    rows = []
    for name, bandwidth in [("10 GB/s", 8e10), ("1 GB/s (paper)", 8e9), ("100 MB/s", 8e8), ("10 MB/s", 8e7)]:
        model = LatencyModel(network=NetworkModel(name=name, bandwidth_bps=bandwidth))
        latency_s = CryptoScheduler(model).latency_seconds(spec)
        rows.append(
            {
                "network": name,
                "latency (ms)": 1e3 * latency_s,
                "efficiency (1/s*kW)": energy.efficiency_per_s_kw(latency_s),
            }
        )
    print(render_table(rows))


if __name__ == "__main__":
    operator_breakdown()
    backbone_latencies()
    pasnet_variants()
    bandwidth_sweep()
