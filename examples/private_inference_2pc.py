"""Private inference under 2PC, operator by operator.

Demonstrates the cryptographic substrate on its own (Section II of the
paper): secret sharing a client query, evaluating polynomial and
non-polynomial operators over the shares, and running a full derived PASNet
model privately while accounting every byte on the wire.

Run with:  python examples/private_inference_2pc.py
"""

from __future__ import annotations

import numpy as np

from repro.crypto import make_context, reconstruct, share
from repro.crypto.protocols import (
    multiply,
    secure_relu,
    secure_x2act,
    square,
)
from repro.crypto.secure_model import SecureInferenceEngine
from repro.models import build_model, export_layer_weights, vgg_tiny
from repro.nn.tensor import Tensor
from repro.utils import seed_everything


def demo_operators() -> None:
    """The building blocks: share, multiply (Beaver), square, ReLU, X^2act."""
    print("== 2PC operator demo ==")
    ctx = make_context(seed=0)
    rng = np.random.default_rng(0)
    x = rng.uniform(-2, 2, size=(4,))
    y = rng.uniform(-2, 2, size=(4,))
    x_shared, y_shared = share(x, ctx.ring, rng), share(y, ctx.ring, rng)

    print(f"secret x = {np.round(x, 3)}")
    print(f"  share held by S0: {x_shared.share0}")
    print(f"  share held by S1: {x_shared.share1}")

    product = reconstruct(multiply(ctx, x_shared, y_shared))
    print(f"[x*y]   -> {np.round(product, 3)} (plaintext {np.round(x * y, 3)})")
    squared = reconstruct(square(ctx, x_shared))
    print(f"[x^2]   -> {np.round(squared, 3)} (plaintext {np.round(x * x, 3)})")

    ctx.reset_communication()
    relu = reconstruct(secure_relu(ctx, x_shared))
    relu_bytes = ctx.communication_bytes
    print(f"ReLU(x) -> {np.round(relu, 3)}  [{relu_bytes} bytes of comparison traffic]")

    ctx.reset_communication()
    poly = reconstruct(secure_x2act(ctx, x_shared, w1=0.2, w2=1.0, b=0.0, num_elements=4))
    poly_bytes = ctx.communication_bytes
    print(f"X2act(x)-> {np.round(poly, 3)}  [{poly_bytes} bytes]")
    print(f"ReLU costs {relu_bytes / max(poly_bytes, 1):.0f}x the communication of X^2act\n")


def demo_model_inference() -> None:
    """Full private inference of an all-polynomial tiny VGG."""
    print("== full-model private inference ==")
    seed_everything(1)
    spec = vgg_tiny(input_size=8).with_all_polynomial()
    model = build_model(spec)
    model.eval()
    weights = export_layer_weights(model)

    rng = np.random.default_rng(5)
    query = rng.normal(size=(2, 3, 8, 8))
    plaintext = model(Tensor(query)).data

    engine = SecureInferenceEngine(make_context(seed=2))
    result = engine.run(spec, weights, query)

    error = np.abs(result.logits - plaintext).max()
    print(f"model: {spec.name} ({len(spec.layers)} layers, all polynomial)")
    print(f"max |2PC - plaintext| logit error: {error:.4f} (fixed-point noise)")
    print(f"predictions agree: {np.array_equal(result.logits.argmax(1), plaintext.argmax(1))}")
    print(f"total online communication: {result.communication_bytes / 1e3:.1f} kB "
          f"in {result.communication_rounds} rounds")
    print("per-layer communication (top 5):")
    top = sorted(result.per_layer_bytes.items(), key=lambda kv: kv[1], reverse=True)[:5]
    for name, num_bytes in top:
        print(f"  {name:<10s} {num_bytes / 1e3:8.1f} kB")


if __name__ == "__main__":
    demo_operators()
    demo_model_inference()
