"""Private inference under 2PC, operator by operator.

Demonstrates the cryptographic substrate on its own (Section II of the
paper): secret sharing a client query, evaluating polynomial and
non-polynomial operators over the shares, and running a full derived PASNet
model privately — compiled into a plan, preprocessed offline, executed
online over a query batch — while accounting every byte on the wire.

Run with:  python examples/private_inference_2pc.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.crypto import make_context, reconstruct, share
from repro.crypto.protocols import (
    multiply,
    secure_relu,
    secure_x2act,
    square,
)
from repro.crypto.secure_model import SecureInferenceEngine
from repro.models import build_model, export_layer_weights, vgg_tiny
from repro.nn.tensor import Tensor
from repro.utils import seed_everything


def demo_operators() -> None:
    """The building blocks: share, multiply (Beaver), square, ReLU, X^2act."""
    print("== 2PC operator demo ==")
    ctx = make_context(seed=0)
    rng = np.random.default_rng(0)
    x = rng.uniform(-2, 2, size=(4,))
    y = rng.uniform(-2, 2, size=(4,))
    x_shared, y_shared = share(x, ctx.ring, rng), share(y, ctx.ring, rng)

    print(f"secret x = {np.round(x, 3)}")
    print(f"  share held by S0: {x_shared.share0}")
    print(f"  share held by S1: {x_shared.share1}")

    product = reconstruct(multiply(ctx, x_shared, y_shared))
    print(f"[x*y]   -> {np.round(product, 3)} (plaintext {np.round(x * y, 3)})")
    squared = reconstruct(square(ctx, x_shared))
    print(f"[x^2]   -> {np.round(squared, 3)} (plaintext {np.round(x * x, 3)})")

    ctx.reset_communication()
    relu = reconstruct(secure_relu(ctx, x_shared))
    relu_bytes = ctx.communication_bytes
    print(f"ReLU(x) -> {np.round(relu, 3)}  [{relu_bytes} bytes of comparison traffic]")

    ctx.reset_communication()
    poly = reconstruct(secure_x2act(ctx, x_shared, w1=0.2, w2=1.0, b=0.0, num_elements=4))
    poly_bytes = ctx.communication_bytes
    print(f"X2act(x)-> {np.round(poly, 3)}  [{poly_bytes} bytes]")
    print(f"ReLU costs {relu_bytes / max(poly_bytes, 1):.0f}x the communication of X^2act\n")


def demo_model_inference() -> None:
    """Full private inference of an all-polynomial tiny VGG, compiled into a
    plan: offline compile + preprocess, then a batched online phase."""
    print("== full-model private inference (compile -> preprocess -> execute) ==")
    seed_everything(1)
    spec = vgg_tiny(input_size=8).with_all_polynomial()
    model = build_model(spec)
    model.eval()
    weights = export_layer_weights(model)

    rng = np.random.default_rng(5)
    batch = 4
    queries = rng.normal(size=(batch, 3, 8, 8))
    plaintext = model(Tensor(queries)).data

    engine = SecureInferenceEngine(make_context(seed=2))

    # Offline phase: lower the spec into a plan and pre-generate every
    # Beaver triple / pair / bit triple the online phase will consume.
    start = time.perf_counter()
    plan = engine.compile(spec, batch_size=batch)
    pool = engine.preprocess(plan)
    offline_s = time.perf_counter() - start

    # Online phase: the client-visible latency — zero dealer calls.
    start = time.perf_counter()
    result = engine.execute(plan, weights, queries, pool=pool)
    online_s = time.perf_counter() - start

    error = np.abs(result.logits - plaintext).max()
    manifest = plan.manifest
    print(f"model: {spec.name} ({len(spec.layers)} layers, all polynomial), "
          f"batch of {batch} queries")
    print(f"max |2PC - plaintext| logit error: {error:.4f} (fixed-point noise)")
    print(f"predictions agree: {np.array_equal(result.logits.argmax(1), plaintext.argmax(1))}")
    print(f"offline: {1e3 * offline_s:.1f} ms — "
          f"{manifest.triple_elements} triple + "
          f"{manifest.square_pair_elements} square-pair + "
          f"{manifest.bit_triple_elements} bit-triple elements "
          f"({manifest.material_bytes / 1e3:.1f} kB of material)")
    print(f"online:  {1e3 * online_s:.1f} ms — "
          f"{result.communication_bytes / 1e3:.1f} kB "
          f"in {result.communication_rounds} rounds "
          f"({result.online_bytes_per_query / 1e3:.1f} kB/query)")
    print(f"manifest prediction exact: "
          f"{result.communication_bytes == plan.online_bytes}")
    print("per-layer online communication (top 5):")
    top = sorted(result.per_layer_bytes.items(), key=lambda kv: kv[1], reverse=True)[:5]
    for name, num_bytes in top:
        print(f"  {name:<10s} {num_bytes / 1e3:8.1f} kB")


if __name__ == "__main__":
    demo_operators()
    demo_model_inference()
