"""Boot the asyncio serving daemon and exercise its control plane.

The serving story of the paper made executable end to end: one
:class:`~repro.serve.daemon.ServingDaemon` event loop multiplexes framed
TCP clients over a heartbeat-supervised pool of two-process worker pairs,
with per-(model, batch) admission control in front.  The script

1. boots the daemon on an ephemeral port and prints the curl-able
   ``/healthz`` and ``/stats`` endpoints,
2. submits a few query batches through the framed client and verifies one
   of them **bit-identically** against the in-process engine at its job
   seed,
3. pushes past the admission budget to show an explicit backpressure
   verdict (shed with ``retry_after_ms``, never a silent drop).

Run with:  PYTHONPATH=src python examples/serve_daemon.py
Optionally ``--json out.json`` writes the measurements (schema
``serving-bench/v1``) for CI artifacts.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.crypto import make_context
from repro.crypto.secure_model import SecureInferenceEngine
from repro.models import build_model, export_layer_weights, get_backbone
from repro.nn.tensor import Tensor
from repro.serve import BackpressureError, DaemonClient, ServableModel, ServingDaemon
from repro.serve.daemon import http_get
from repro.utils import seed_everything


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg-tiny", help="zoo backbone name")
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--requests", type=int, default=3,
                        help="query batches submitted through the client")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--queue-budget", type=int, default=64,
                        help="admission queue budget per (model, batch)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measurements to this JSON file")
    args = parser.parse_args()

    seed_everything(1)
    spec = get_backbone(args.model, input_size=args.input_size)
    spec = spec.with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):  # move BN running stats off their init values
        net(Tensor(rng.normal(
            size=(4, spec.in_channels, spec.input_size, spec.input_size)
        )))
    net.eval()
    servable = ServableModel(spec, export_layer_weights(net))

    with ServingDaemon(
        {args.model: servable},
        num_shards=args.shards,
        max_batch=args.batch,
        seed=args.seed,
        queue_budget=args.queue_budget,
    ) as daemon:
        host, port = daemon.address
        print(f"== serving daemon: {spec.name}, {args.shards} shard(s) ==")
        print(f"health endpoint:  curl http://{host}:{port}/healthz")
        print(f"stats endpoint:   curl http://{host}:{port}/stats")
        health = http_get(host, port, "/healthz")
        print(f"/healthz: status={health['status']} "
              f"live_shards={health['live_shards']} "
              f"queue_depth={health['queue_depth']}/{health['queue_budget']}")

        # -- framed submissions + one replay check ---------------------------- #
        latencies = []
        replay = None
        with DaemonClient(host, port) as client:
            assert client.ping(), "daemon heartbeat did not round-trip"
            for index in range(args.requests):
                queries = np.random.default_rng(7 + index).normal(
                    size=(args.batch, spec.in_channels,
                          spec.input_size, spec.input_size)
                )
                result = client.infer(args.model, queries)
                latencies.append(result.latency_ms)
                print(f"request {index}: predicted {result.predicted_classes} "
                      f"(job seeds {sorted(set(result.job_seeds))}, "
                      f"{result.latency_ms:.1f} ms)")
                if replay is None:
                    replay = (queries, result)

        queries, result = replay
        by_job: dict = {}
        for row, job_seed in enumerate(result.job_seeds):
            by_job.setdefault(job_seed, []).append(row)
        bit_identical = True
        for job_seed, rows in by_job.items():
            engine = SecureInferenceEngine(make_context(seed=job_seed))
            plan = engine.compile(spec, batch_size=len(rows))
            reference = engine.execute(
                plan, servable.weights, queries[rows],
                pool=engine.preprocess(plan),
            )
            bit_identical &= bool(
                np.array_equal(result.logits[rows], reference.logits)
            )
        print(f"bit-identity vs in-process engine at the job seed(s): "
              f"{'OK' if bit_identical else 'DIVERGED'}")

        # -- one deliberate shed: the explicit backpressure verdict ------------ #
        shed_verdict = None
        with ServingDaemon(
            {args.model: servable},
            num_shards=1,
            max_batch=args.batch,
            seed=args.seed + 1,
            queue_budget=args.batch,
        ) as tiny, DaemonClient(*tiny.address) as client:
            tiny.admission.try_admit(args.model, args.batch)  # fill the budget
            try:
                client.infer(args.model, np.zeros(
                    (args.batch, spec.in_channels,
                     spec.input_size, spec.input_size)
                ))
            except BackpressureError as verdict:
                shed_verdict = {
                    "queue_depth": verdict.queue_depth,
                    "queue_budget": verdict.queue_budget,
                    "retry_after_ms": verdict.retry_after_ms,
                }
                print(f"backpressure verdict at a full budget: depth "
                      f"{verdict.queue_depth}/{verdict.queue_budget}, retry "
                      f"after {verdict.retry_after_ms:.0f} ms")

        stats = daemon.stats_payload()

    if not bit_identical:
        raise SystemExit("daemon logits diverged from the in-process engine")
    if shed_verdict is None:
        raise SystemExit("a 1-deep budget did not shed — admission is broken")

    if args.json_path:
        payload = {
            "schema": "serving-bench/v1",
            "kind": "serve_daemon_example",
            "model": spec.name,
            "config": {
                "shards": args.shards,
                "batch": args.batch,
                "requests": args.requests,
                "seed": args.seed,
                "queue_budget": args.queue_budget,
            },
            "latency_ms": latencies,
            "bit_identical": bit_identical,
            "shed_verdict": shed_verdict,
            "healthz": health,
            "stats": stats,
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote measurements to {args.json_path}")


if __name__ == "__main__":
    main()
