"""Latency-penalty (λ) trade-off study.

Two views of the accuracy/latency trade-off the λ hyper-parameter controls
(Fig. 5 of the paper):

1. *Trained* trade-off at tiny scale: run the actual differentiable search
   (Algorithm 1) for several λ values on the synthetic dataset, finetune each
   derived architecture and report its measured accuracy and model latency.
2. *Full-scale* trade-off: the analytic λ-sweep over the real CIFAR-10
   backbones with the calibrated accuracy surrogate (what the Fig. 5
   benchmarks use).

Run with:  python examples/search_lambda_tradeoff.py
"""

from __future__ import annotations

from repro.core import (
    DifferentiablePolynomialSearch,
    SearchConfig,
    Supernet,
    TrainConfig,
    finetune_derived,
    lambda_sweep,
)
from repro.core.surrogate import AccuracySurrogate
from repro.data import DataLoader, synthetic_tiny, train_val_split
from repro.evaluation import render_table
from repro.hardware import CryptoScheduler
from repro.models import get_backbone, vgg_tiny
from repro.utils import seed_everything


def trained_tradeoff() -> None:
    print("== trained λ trade-off (tiny backbone, synthetic data) ==")
    scheduler = CryptoScheduler()
    rows = []
    for lam in (0.0, 5e-3, 5e-2):
        seed_everything(0)
        dataset = synthetic_tiny(num_samples=128, image_size=8, noise_std=0.25)
        train_set, val_set = train_val_split(dataset, 0.5)
        train_loader = DataLoader(train_set, batch_size=16, seed=1)
        val_loader = DataLoader(val_set, batch_size=16, seed=2)
        supernet = Supernet(vgg_tiny(input_size=8))
        search = DifferentiablePolynomialSearch(
            supernet,
            train_loader,
            val_loader,
            SearchConfig(latency_lambda=lam, num_steps=8, log_every=0),
        )
        derived = search.run().derived_spec
        _, history = finetune_derived(
            derived, train_loader, val_loader, TrainConfig(epochs=3, lr=0.08)
        )
        rows.append(
            {
                "lambda": lam,
                "poly fraction": derived.polynomial_fraction(),
                "latency (ms)": 1e3 * scheduler.latency_seconds(derived),
                "val accuracy": history.best_val_accuracy,
            }
        )
    print(render_table(rows))
    print()


def full_scale_tradeoff() -> None:
    print("== full-scale λ sweep on ResNet-18 / CIFAR-10 (surrogate accuracy) ==")
    backbone = get_backbone("resnet18-cifar")
    sweep = lambda_sweep(backbone, surrogate=AccuracySurrogate(jitter_std=0.0))
    rows = [
        {
            "lambda": point.lam,
            "accuracy (%)": point.accuracy,
            "latency (ms)": point.latency_ms,
            "comm (MB)": point.communication_mb,
            "ReLU elements (k)": point.relu_elements / 1e3,
        }
        for point in sweep.points
    ]
    print(render_table(rows))


if __name__ == "__main__":
    trained_tradeoff()
    full_scale_tradeoff()
