"""Cross-work comparisons: ReLU-reduction baselines and PI systems.

Regenerates the data behind Fig. 7 (accuracy vs ReLU count against
DeepReDuce / DELPHI / CryptoNAS / SNL) and Table I (PASNet variants against
CryptGPU and CryptFLOW), printing the same rows the benchmark harness checks.

Run with:  python examples/crosswork_comparison.py
"""

from __future__ import annotations

from repro.core.surrogate import AccuracySurrogate
from repro.evaluation import (
    accuracy_at_budget,
    comparator_rows,
    crosswork_speedups,
    figure7_crosswork,
    render_table,
    table1_rows,
)


def relu_reduction_comparison() -> None:
    print("== Fig. 7: accuracy at ReLU budgets (CIFAR-10) ==")
    curves = figure7_crosswork(num_points=10, surrogate=AccuracySurrogate(jitter_std=0.0))
    budgets = [10.0, 30.0, 100.0, 300.0]
    rows = []
    for method, points in curves.items():
        row = {"method": method}
        for budget in budgets:
            row[f"acc@{budget:g}k ReLU"] = accuracy_at_budget(points, budget)
        rows.append(row)
    print(render_table(rows))
    print()


def system_comparison() -> None:
    print("== Table I: PASNet vs CryptGPU / CryptFLOW (ImageNet) ==")
    rows = table1_rows()
    print(render_table([r.as_dict() for r in rows] + comparator_rows()))
    print()
    print("== headline improvement factors ==")
    print(
        render_table(
            [
                {
                    "variant": s.variant,
                    "vs": s.comparator,
                    "latency x": s.latency_speedup,
                    "comm x": s.communication_reduction,
                    "efficiency x": s.efficiency_gain,
                }
                for s in crosswork_speedups(rows)
            ]
        )
    )


if __name__ == "__main__":
    relu_reduction_comparison()
    system_comparison()
