"""Quickstart: search, finetune and securely deploy a polynomial model.

This walks the whole PASNet pipeline (Fig. 3 of the paper) at a scale the
pure-numpy engine handles in well under a minute:

1. build a tiny VGG-style backbone and its gated supernet;
2. run the differentiable cryptographic-hardware-aware search (Algorithm 1);
3. discretize and finetune the searched architecture with STPAI;
4. report the 2PC latency / communication of the searched model from the
   hardware model, and run an actual 2PC private inference on a query.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    DifferentiablePolynomialSearch,
    SearchConfig,
    Supernet,
    TrainConfig,
    finetune_derived,
)
from repro.crypto import make_context
from repro.crypto.secure_model import SecureInferenceEngine
from repro.data import DataLoader, synthetic_tiny, train_val_split
from repro.hardware import CryptoScheduler, communication_report
from repro.models import export_layer_weights, vgg_tiny
from repro.nn.tensor import Tensor
from repro.utils import seed_everything


def main() -> None:
    seed_everything(0)

    # ------------------------------------------------------------------ #
    # Data: a synthetic CIFAR-10 stand-in, split 50/50 into the weight-
    # training and architecture-validation halves (Section IV-A).
    # ------------------------------------------------------------------ #
    dataset = synthetic_tiny(num_samples=128, image_size=8, noise_std=0.25)
    train_set, val_set = train_val_split(dataset, val_fraction=0.5)
    train_loader = DataLoader(train_set, batch_size=16, seed=1)
    val_loader = DataLoader(val_set, batch_size=16, seed=2)

    # ------------------------------------------------------------------ #
    # Supernet + hardware-aware differentiable search.
    # ------------------------------------------------------------------ #
    backbone = vgg_tiny(input_size=8)
    supernet = Supernet(backbone)
    print(f"backbone {backbone.name}: {len(backbone.layers)} layers, "
          f"{len(backbone.searchable_layers())} searchable gates")

    search = DifferentiablePolynomialSearch(
        supernet,
        train_loader,
        val_loader,
        SearchConfig(latency_lambda=2e-2, num_steps=10, log_every=5),
    )
    result = search.run()
    derived = result.derived_spec
    print(f"searched architecture: {100 * result.polynomial_fraction:.0f}% polynomial activations")
    for layer_name, weights in result.architecture_summary.items():
        chosen = max(weights, key=weights.get)
        print(f"  {layer_name}: {chosen}  (softmax weights {weights})")

    # ------------------------------------------------------------------ #
    # Transfer learning with STPAI on the derived architecture.
    # ------------------------------------------------------------------ #
    model, history = finetune_derived(
        derived, train_loader, val_loader, TrainConfig(epochs=4, lr=0.08)
    )
    print(f"finetuned top-1 accuracy on the synthetic validation split: "
          f"{100 * history.best_val_accuracy:.1f}%")

    # ------------------------------------------------------------------ #
    # Deployment-side view: analytical 2PC latency & communication.
    # ------------------------------------------------------------------ #
    scheduler = CryptoScheduler()
    baseline_ms = 1e3 * scheduler.latency_seconds(backbone)
    searched_ms = 1e3 * scheduler.latency_seconds(derived)
    print(f"2PC latency (hardware model): all-ReLU {baseline_ms:.2f} ms -> "
          f"searched {searched_ms:.2f} ms ({baseline_ms / searched_ms:.1f}x faster)")
    print(f"online communication: {communication_report(backbone).total_megabytes:.2f} MB -> "
          f"{communication_report(derived).total_megabytes:.2f} MB")

    # ------------------------------------------------------------------ #
    # And an actual 2PC private inference of the finetuned model.
    # ------------------------------------------------------------------ #
    model.eval()
    query = np.random.default_rng(3).normal(size=(1, 3, 8, 8))
    plaintext_pred = int(model(Tensor(query)).data.argmax())
    engine = SecureInferenceEngine(make_context(seed=7))
    secure = engine.run(derived, export_layer_weights(model), query)
    print(f"private inference: plaintext class {plaintext_pred}, "
          f"2PC class {int(secure.logits.argmax())}, "
          f"measured communication {secure.communication_bytes / 1e3:.1f} kB "
          f"over {secure.communication_rounds} rounds")


if __name__ == "__main__":
    main()
