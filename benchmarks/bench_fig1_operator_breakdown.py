"""Figure 1 — 2PC operator latency breakdown of a ResNet-50 bottleneck block.

Regenerates the per-operator latencies of Fig. 1 (ImageNet input, 1 GB/s
network, ZCU104 devices) from the analytical hardware model and checks the
headline observation: ReLU contributes the overwhelming majority of the
block latency.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.evaluation.figures import FIG1_PAPER_MS, figure1_breakdown
from repro.evaluation.report import render_table


def test_fig1_operator_breakdown(benchmark):
    rows = benchmark(figure1_breakdown)
    emit("Fig. 1 operator latency breakdown (measured vs paper, ms)", render_table(rows))

    by_name = {row["operator"]: row for row in rows}
    # ReLU latencies land within 10% of the paper's reported numbers.
    for name, paper_ms in FIG1_PAPER_MS.items():
        if name.startswith("ReLU"):
            assert abs(by_name[name]["measured_ms"] - paper_ms) / paper_ms < 0.10
    # The block is completely dominated by the comparison protocol.
    assert by_name["ReLU share of block"]["measured_ms"] > 90.0
