"""Ablation — search strategy: analytic/differentiable equilibrium vs
gradient-free searchers (DESIGN.md §4, Section III-D motivation).

The paper argues that RL/sampling-based NAS "requires a significant amount
of search overhead" compared to the differentiable formulation.  This
benchmark runs random search and an evolutionary hill climber over the same
search space and objective (accuracy surrogate + λ·latency) on ResNet-18 /
CIFAR-10 and compares the objective they reach per candidate evaluation with
the analytic per-gate equilibrium the differentiable search converges to.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.random_search import EvolutionarySearch, RandomSearch
from repro.core.surrogate import AccuracySurrogate
from repro.core.sweep import evaluate_point, select_architecture
from repro.evaluation.report import render_table
from repro.hardware.lut import build_latency_table
from repro.models.resnet import resnet18_cifar

LAMBDA = 1e-3


def _run_comparison():
    backbone = resnet18_cifar()
    surrogate = AccuracySurrogate(jitter_std=0.0)
    table = build_latency_table(backbone)

    analytic_spec = select_architecture(backbone, LAMBDA, table=table, surrogate=surrogate)
    analytic_point = evaluate_point(LAMBDA, analytic_spec, table, surrogate)
    analytic_objective = -analytic_point.accuracy + LAMBDA * analytic_point.latency_ms

    random_result = RandomSearch(backbone, LAMBDA, surrogate=surrogate, seed=0).run(num_samples=40)
    evolution_result = EvolutionarySearch(
        backbone, LAMBDA, surrogate=surrogate, population=8, seed=0
    ).run(generations=5)

    rows = [
        {
            "strategy": "differentiable (analytic equilibrium)",
            "evaluations": 1,
            "objective": analytic_objective,
            "accuracy": analytic_point.accuracy,
            "latency (ms)": analytic_point.latency_ms,
        },
        {
            "strategy": "random search",
            "evaluations": random_result.evaluations,
            "objective": random_result.best.objective,
            "accuracy": random_result.best.accuracy,
            "latency (ms)": random_result.best.latency_ms,
        },
        {
            "strategy": "evolutionary search",
            "evaluations": evolution_result.evaluations,
            "objective": evolution_result.best.objective,
            "accuracy": evolution_result.best.accuracy,
            "latency (ms)": evolution_result.best.latency_ms,
        },
    ]
    return rows


def test_ablation_search_strategy(benchmark):
    rows = benchmark(_run_comparison)
    emit("Search-strategy ablation (ResNet-18 / CIFAR-10, lambda=1e-3)", render_table(rows))
    analytic, random_row, evolution_row = rows
    # The differentiable equilibrium matches or beats both gradient-free
    # searchers despite using a single "evaluation".
    assert analytic["objective"] <= random_row["objective"] + 1e-9
    assert analytic["objective"] <= evolution_row["objective"] + 1e-9
    # The gradient-free searchers needed one to two orders of magnitude more
    # candidate evaluations.
    assert random_row["evaluations"] >= 40
    assert evolution_row["evaluations"] >= 40
