"""Figure 7 — cross-work accuracy vs ReLU-count comparison on CIFAR-10.

Compares the PASNet Pareto frontier against the re-implemented baseline
strategies (DeepReDuce, DELPHI, CryptoNAS, SNL) and their published anchor
points, and checks the paper's claim: PASNet achieves a much better
accuracy/ReLU trade-off, especially at extremely small ReLU budgets.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.core.surrogate import AccuracySurrogate
from repro.evaluation.figures import accuracy_at_budget, figure7_crosswork
from repro.evaluation.report import render_table


def test_fig7_crosswork_relu_reduction(benchmark):
    surrogate = AccuracySurrogate(jitter_std=0.0)
    curves = benchmark(lambda: figure7_crosswork(num_points=10, surrogate=surrogate))

    budgets = [10.0, 30.0, 100.0]  # thousands of ReLU elements
    rows = []
    for method, points in curves.items():
        row = {"method": method}
        for budget in budgets:
            row[f"acc@{budget:g}k"] = accuracy_at_budget(points, budget)
        rows.append(row)
    emit("Fig. 7 accuracy at ReLU budgets (top-1 %)", render_table(rows))

    for budget in budgets:
        ours = accuracy_at_budget(curves["PASNet (ours)"], budget)
        for method, points in curves.items():
            if method == "PASNet (ours)":
                continue
            other = accuracy_at_budget(points, budget)
            if np.isnan(other):
                continue
            assert ours >= other, f"{method} beats PASNet at {budget}k ReLUs"
    # "Almost no accuracy drop with aggressive ReLU reduction": within 2
    # points of the unconstrained best even at a 10k budget.
    unconstrained = max(p.accuracy for p in curves["PASNet (ours)"])
    assert unconstrained - accuracy_at_budget(curves["PASNet (ours)"], 10.0) < 2.0
