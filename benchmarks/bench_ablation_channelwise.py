"""Ablation — layer-wise vs channel-wise polynomial activation granularity.

Section III-A argues for layer-wise second-order polynomial activations;
channel-wise replacement (SAFENet-style) adds many more trainable activation
parameters and, per the paper's convexity argument, does not help.  This
ablation finetunes the same all-polynomial tiny backbone with both
granularities on the synthetic dataset and compares parameter count,
finetuned accuracy and training stability.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.channelwise import convert_to_channelwise
from repro.core.finetune import TrainConfig, Trainer
from repro.core.stpai import stpai_initialize
from repro.data import DataLoader, synthetic_tiny, train_val_split
from repro.evaluation.report import render_table
from repro.models.builder import build_model
from repro.models.vgg import vgg_tiny
from repro.utils import seed_everything


def _run_ablation():
    dataset = synthetic_tiny(num_samples=128, image_size=8, seed=9, noise_std=0.25)
    train, val = train_val_split(dataset, 0.5, seed=0)
    train_loader = DataLoader(train, batch_size=16, seed=1)
    val_loader = DataLoader(val, batch_size=16, seed=2)
    spec = vgg_tiny(input_size=8).with_all_polynomial()

    rows = []
    for granularity in ("layer-wise", "channel-wise"):
        seed_everything(1)
        model = build_model(spec)
        stpai_initialize(model, seed=0)
        if granularity == "channel-wise":
            convert_to_channelwise(model)
        history = Trainer(TrainConfig(epochs=4, lr=0.08)).train(model, train_loader, val_loader)
        rows.append(
            {
                "granularity": granularity,
                "parameters": model.num_parameters(),
                "best val acc": history.best_val_accuracy,
                "final train loss": history.train_loss[-1],
            }
        )
    return rows


def test_ablation_layerwise_vs_channelwise(benchmark):
    rows = benchmark(_run_ablation)
    emit("Polynomial granularity ablation", render_table(rows))
    layerwise, channelwise = rows
    # Channel-wise replacement adds activation parameters ...
    assert channelwise["parameters"] > layerwise["parameters"]
    # ... without improving accuracy meaningfully on this task (the paper's
    # argument for the simpler layer-wise granularity).
    assert layerwise["best val acc"] >= channelwise["best val acc"] - 0.05
