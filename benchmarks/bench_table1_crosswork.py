"""Table I — PASNet variants vs CryptGPU / CryptFLOW on CIFAR-10 and ImageNet.

Regenerates every PASNet row (latency, communication and energy efficiency
measured with this repository's hardware model; accuracies are the paper's
reported values — see DESIGN.md) plus the published comparator rows, and
checks the abstract's headline claims: ~100x-class latency reduction for
PASNet-A, tens-of-x for PASNet-B, and a >1000x energy-efficiency gap.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.evaluation.report import render_table
from repro.evaluation.tables import (
    comparator_rows,
    crosswork_speedups,
    paper_vs_measured_costs,
    table1_rows,
)


def test_table1_crosswork_comparison(benchmark):
    rows = benchmark(table1_rows)

    emit(
        "Table I (PASNet rows measured, comparator rows published)",
        render_table([r.as_dict() for r in rows] + comparator_rows()),
    )
    emit("Table I ImageNet cost: paper vs measured", render_table(paper_vs_measured_costs(rows)))

    speedups = {(s.variant, s.comparator): s for s in crosswork_speedups(rows)}
    emit(
        "Cross-work improvement factors",
        render_table(
            [
                {
                    "variant": key[0],
                    "vs": key[1],
                    "latency x": s.latency_speedup,
                    "comm x": s.communication_reduction,
                    "efficiency x": s.efficiency_gain,
                }
                for key, s in speedups.items()
            ]
        ),
    )

    by_name = {row.model: row for row in rows}
    # Latency/communication ordering across variants matches the paper.
    assert by_name["PASNet-A"].imagenet_latency_s < by_name["PASNet-B"].imagenet_latency_s
    assert by_name["PASNet-B"].imagenet_latency_s < by_name["PASNet-C"].imagenet_latency_s
    # Measured ImageNet costs land within a factor ~2 of the reported values.
    for row in paper_vs_measured_costs(rows):
        assert 0.4 < row["measured lat (s)"] / row["paper lat (s)"] < 2.1
        assert 0.5 < row["measured comm (GB)"] / row["paper comm (GB)"] < 1.5
    # Headline claims (order of magnitude): 147x -> >50x, 40x -> >20x, >1000x efficiency.
    assert speedups[("PASNet-A", "CryptGPU")].latency_speedup > 50
    assert speedups[("PASNet-B", "CryptGPU")].latency_speedup > 20
    assert speedups[("PASNet-A", "CryptGPU")].efficiency_gain > 1000
    assert speedups[("PASNet-B", "CryptGPU")].efficiency_gain > 1000
    assert speedups[("PASNet-A", "CryptFLOW")].latency_speedup > 100
