"""Figure 5(a) — searched model accuracy vs latency-penalty λ on CIFAR-10.

Regenerates the accuracy series of the five backbones (VGG-16, MobileNetV2,
ResNet-18/34/50) across the λ sweep, including the all-ReLU and all-poly
endpoints, and checks the paper's per-backbone degradation claims:
ResNets lose at most ~0.34 points, MobileNetV2 ~1.3, VGG-16 ~3.2.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.surrogate import AccuracySurrogate
from repro.evaluation.figures import figure5_sweep
from repro.evaluation.report import render_series


def test_fig5a_accuracy_vs_lambda(benchmark):
    surrogate = AccuracySurrogate(jitter_std=0.0)
    sweep = benchmark(lambda: figure5_sweep(surrogate=surrogate))

    labels = next(iter(sweep.values())).labels
    emit(
        "Fig. 5(a) searched model accuracy vs lambda (top-1 %)",
        render_series({name: s.accuracy for name, s in sweep.items()}, labels),
    )

    drops = {name: s.max_accuracy_drop for name, s in sweep.items()}
    assert drops["resnet18-cifar"] < 0.5
    assert drops["resnet34-cifar"] < 0.5
    assert drops["resnet50-cifar"] < 0.5
    assert 0.5 < drops["mobilenetv2-cifar"] < 2.0
    assert drops["vgg16-cifar"] > 2.0
    # Accuracy decreases monotonically (within jitter-free surrogate) as the
    # latency penalty pushes more layers to polynomial activations.
    for series in sweep.values():
        assert series.accuracy[0] == max(series.accuracy)
