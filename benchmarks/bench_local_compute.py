"""Local-compute benchmark: fused kernel lowering vs the reference path.

Three phases, mirroring the acceptance criteria of the fused local-compute
lowering work:

1. **cpu time per layer class** — for every zoo model, the online-phase
   local-compute time (``per_op_cpu_ns``, wire waits excluded) of the
   scheduled reference execution vs the lowered (fused-kernel) execution,
   aggregated into the *linear* class (CONV + LINEAR ops, where im2col
   workspaces and stacked-share kernels apply) and the *nonlinear* class
   (comparisons, activations, pooling).  Best-of-N per class;
2. **zoo-wide bit-identity in all four execution modes** — for every zoo
   model (ReLU and polynomial variants) the lowered path must reproduce the
   sequential compiled path bit for bit when run (a) sequentially,
   (b) scheduled+lowered in process, (c) lowered over a loopback transport
   with two party threads, and (d) lowered over two OS processes and a real
   TCP socket.  Exits non-zero on any divergence;
3. **fused-kernel accounting** — the lowered runs must actually take the
   fused path (``fused_kernel_calls > 0``) and the reference runs must not.

Run with:  PYTHONPATH=src python benchmarks/bench_local_compute.py
Optionally ``--json out.json`` writes the measurements (schema
``serving-bench/v1``, documented in docs/serving.md) for CI artifacts; CI
compares them against the committed baseline in
``benchmarks/baselines/local_compute.json`` via
``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto import PartyChannel, TwoPartyContext, make_context, optimize_plan
from repro.crypto.dealer import TrustedDealer
from repro.crypto.plan import compile_plan
from repro.crypto.ring import DEFAULT_RING
from repro.crypto.secure_model import SecureInferenceEngine
from repro.crypto.sharing import share
from repro.crypto.transport import LoopbackTransport
from repro.models import build_model, export_layer_weights, get_backbone
from repro.nn.tensor import Tensor
from repro.runtime import run_two_process_inference
from repro.runtime.party import execute_plan_as_party
from repro.serve import ServableModel
from repro.utils import seed_everything

#: zoo models covered by the cpu-time and bit-identity phases
ZOO_MODELS = ("vgg-tiny", "resnet-tiny", "mobilenetv2-tiny")

SCHEMA = "serving-bench/v1"

#: plan-op kinds whose local compute is dominated by matmul/im2col — the
#: layer class the fused lowering targets hardest (and the one CI gates)
LINEAR_KINDS = frozenset({"CONV", "LINEAR"})


def _trained_servable(name: str, input_size: int, polynomial: bool) -> ServableModel:
    spec = get_backbone(name, input_size=input_size)
    if polynomial:
        spec = spec.with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):  # move BN running stats off their init values
        net(Tensor(rng.normal(size=(4, spec.in_channels, input_size, input_size))))
    net.eval()
    return ServableModel(spec, export_layer_weights(net))


def _layer_class_of(plan) -> Dict[str, str]:
    """Map op name -> layer class for the cpu-time aggregation."""
    return {
        op.name: ("linear" if op.kind.name in LINEAR_KINDS else "nonlinear")
        for op in plan.ops
    }


def _classed_cpu_ns(per_op_cpu_ns: Dict[str, int], classes: Dict[str, str]) -> Dict[str, int]:
    totals = {"linear": 0, "nonlinear": 0}
    for name, nanos in per_op_cpu_ns.items():
        totals[classes.get(name, "nonlinear")] += int(nanos)
    return totals


def measure_cpu_time(
    servable: ServableModel,
    input_size: int,
    batch: int,
    repeats: int,
    seed: int,
) -> Dict[str, object]:
    """Best-of-N per-layer-class cpu time, reference vs fused, one model."""
    spec = servable.spec
    x = np.random.default_rng(100).normal(
        size=(batch, spec.in_channels, input_size, input_size)
    )
    entry: Dict[str, object] = {}
    per_mode: Dict[str, Dict[str, int]] = {}
    for mode, lower in (("reference", False), ("fused", True)):
        best: Optional[Dict[str, int]] = None
        fused_calls = 0
        for _ in range(repeats):
            engine = SecureInferenceEngine(make_context(seed=seed))
            plan = engine.compile(spec, batch_size=batch, optimize=True, lower=lower)
            result = engine.execute(
                plan, servable.weights, x, pool=engine.preprocess(plan)
            )
            classes = _layer_class_of(plan)
            totals = _classed_cpu_ns(result.per_op_cpu_ns, classes)
            totals["total"] = totals["linear"] + totals["nonlinear"]
            if best is None:
                best = totals
            else:
                # element-wise best-of: each class at its least-noisy sample
                best = {cls: min(best[cls], totals[cls]) for cls in totals}
            fused_calls = result.fused_kernel_calls
        per_mode[mode] = best
        entry[f"{mode}_fused_kernel_calls"] = fused_calls
    for cls in ("linear", "nonlinear", "total"):
        ref = per_mode["reference"][cls]
        fused = per_mode["fused"][cls]
        entry[cls] = {
            "reference_ns": ref,
            "fused_ns": fused,
            "speedup": ref / fused if fused else 0.0,
        }
    return entry


def _loopback_lowered_logits(
    servable: ServableModel, inputs: np.ndarray, seed: int
) -> Tuple[np.ndarray, int]:
    """Lowered plan over a loopback transport, two party threads."""
    ring = DEFAULT_RING
    spec = servable.spec
    batch = int(inputs.shape[0])
    client_rng = np.random.default_rng(seed + 1)
    shared = share(np.asarray(inputs, dtype=np.float64), ring, client_rng)
    plan = optimize_plan(
        compile_plan(spec, batch_size=batch, ring=ring), lower=True
    )
    transports = LoopbackTransport.pair(timeout=60.0)
    executions: Dict[int, object] = {}
    errors: Dict[int, BaseException] = {}

    def run(party: int, input_share: np.ndarray) -> None:
        try:
            channel = PartyChannel(transports[party], party, ring=ring)
            ctx = TwoPartyContext(ring=ring, seed=seed, channel=channel)
            dealer = TrustedDealer(ring=ring, seed=seed)
            pool = dealer.preprocess(plan).restrict_to_party(party)
            executions[party] = execute_plan_as_party(
                ctx, party, plan, servable.weights, input_share, pool=pool
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors[party] = exc
        finally:
            transports[party].close()

    threads = [
        threading.Thread(target=run, args=(party, input_share))
        for party, input_share in ((0, shared.share0), (1, shared.share1))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    if errors:
        raise RuntimeError(f"loopback party failed: {errors}")
    logits = ring.decode(
        ring.add(executions[0].logit_share, executions[1].logit_share)
    )
    return logits, executions[0].fused_kernel_calls


def verify_zoo_bit_identity(
    input_size: int, batch: int, seed: int, include_tcp: bool = True
) -> List[Dict[str, object]]:
    """Lowered execution == sequential compiled path in all four modes."""
    checked: List[Dict[str, object]] = []
    for name in ZOO_MODELS:
        for polynomial in (False, True):
            servable = _trained_servable(name, input_size, polynomial=polynomial)
            spec = servable.spec
            x = np.random.default_rng(100).normal(
                size=(batch, spec.in_channels, input_size, input_size)
            )

            # mode 1 — sequential compiled path: the reference semantics
            sequential = SecureInferenceEngine(make_context(seed=seed))
            plan = sequential.compile(spec, batch_size=batch)
            reference = sequential.execute(
                plan, servable.weights, x, pool=sequential.preprocess(plan)
            )

            # mode 2 — scheduled + lowered, in process
            lowered = SecureInferenceEngine(make_context(seed=seed))
            lplan = lowered.compile(spec, batch_size=batch, lower=True)
            in_process = lowered.execute(
                lplan, servable.weights, x, pool=lowered.preprocess(lplan)
            )

            # mode 3 — lowered over a loopback transport (two party threads)
            loopback_logits, loopback_fused = _loopback_lowered_logits(
                servable, x, seed
            )

            # mode 4 — lowered over two OS processes and a TCP socket
            if include_tcp:
                tcp = run_two_process_inference(
                    spec, servable.weights, x, seed=seed, optimize=True, lower=True
                )
                tcp_logits = tcp.logits
                tcp_fused = tcp.fused_kernel_calls
            else:
                tcp_logits, tcp_fused = reference.logits, None

            modes = {
                "scheduled_lowered": in_process.logits,
                "loopback_lowered": loopback_logits,
                "tcp_lowered": tcp_logits,
            }
            identical = {
                mode: bool(np.array_equal(logits, reference.logits))
                for mode, logits in modes.items()
            }
            checked.append(
                {
                    "model": spec.name,
                    "bit_identical": all(identical.values()),
                    "modes": identical,
                    "fused_kernel_calls": in_process.fused_kernel_calls,
                    "loopback_fused_kernel_calls": loopback_fused,
                    "tcp_fused_kernel_calls": tcp_fused,
                }
            )
            if not all(identical.values()):
                diverged = [m for m, ok in identical.items() if not ok]
                raise SystemExit(
                    f"lowered execution of {spec.name} diverged from the "
                    f"sequential compiled path in mode(s): {diverged}"
                )
            if in_process.fused_kernel_calls <= 0:
                raise SystemExit(
                    f"lowered execution of {spec.name} never took a fused "
                    "kernel path — the lowering is not engaged"
                )
    return checked


def run_benchmark(
    input_size: int = 8,
    batch: int = 2,
    repeats: int = 5,
    seed: int = 11,
    skip_zoo_check: bool = False,
    skip_tcp: bool = False,
) -> dict:
    seed_everything(1)
    cpu: Dict[str, Dict[str, object]] = {}
    for name in ZOO_MODELS:
        servable = _trained_servable(name, input_size, polynomial=False)
        cpu[servable.spec.name] = measure_cpu_time(
            servable, input_size, batch, repeats=repeats, seed=seed
        )
    zoo_check = (
        None
        if skip_zoo_check
        else verify_zoo_bit_identity(
            input_size, batch, seed, include_tcp=not skip_tcp
        )
    )
    min_linear = min(entry["linear"]["speedup"] for entry in cpu.values())
    return {
        "schema": SCHEMA,
        "kind": "local_compute",
        "config": {
            "input_size": input_size,
            "batch": batch,
            "repeats": repeats,
            "seed": seed,
            "models": list(ZOO_MODELS),
        },
        "cpu": cpu,
        "min_linear_speedup": min_linear,
        "zoo_bit_identity": zoo_check,
        "workers": [],
    }


def print_report(report: dict) -> None:
    print("== online-phase local compute (best-of-N, wire waits excluded) ==")
    print(
        f"{'model':<18} {'class':<10} {'reference ms':>13} {'fused ms':>10} "
        f"{'speedup':>8}"
    )
    for model, entry in report["cpu"].items():
        for cls in ("linear", "nonlinear", "total"):
            stats = entry[cls]
            print(
                f"{model:<18} {cls:<10} {stats['reference_ns'] / 1e6:>13.2f} "
                f"{stats['fused_ns'] / 1e6:>10.2f} {stats['speedup']:>7.2f}x"
            )
        print(
            f"{'':<18} fused kernel calls: "
            f"{entry['fused_fused_kernel_calls']} (reference path: "
            f"{entry['reference_fused_kernel_calls']})"
        )
    print(f"\nminimum linear-class speedup: {report['min_linear_speedup']:.2f}x")
    if report["zoo_bit_identity"] is not None:
        identical = sum(1 for c in report["zoo_bit_identity"] if c["bit_identical"])
        print(
            f"zoo bit-identity: {identical}/{len(report['zoo_bit_identity'])} "
            "lowered executions identical to the sequential path in every mode"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--skip-zoo-check", action="store_true")
    parser.add_argument(
        "--skip-tcp", action="store_true",
        help="skip the two-OS-process TCP mode of the bit-identity phase",
    )
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args()

    report = run_benchmark(
        input_size=args.input_size,
        batch=args.batch,
        repeats=args.repeats,
        seed=args.seed,
        skip_zoo_check=args.skip_zoo_check,
        skip_tcp=args.skip_tcp,
    )
    print_report(report)

    # write the artifact before the acceptance gate: a failing run is
    # exactly the one whose per-class cpu data must survive for triage
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote measurements to {args.json_path}")

    # The lowering targets the matmul/im2col-dominated ops; the nonlinear
    # protocols are bounded by OT table construction, so the class gated
    # here is the linear one (acceptance: >= 1.5x on every conv-heavy zoo
    # model).  The committed-baseline ratio is gated separately by
    # tools/check_bench_regression.py.
    if report["min_linear_speedup"] < 1.5:
        raise SystemExit(
            f"minimum linear-class cpu speedup {report['min_linear_speedup']:.2f}x "
            "is below the 1.5x acceptance floor"
        )


if __name__ == "__main__":
    main()
