"""Figure 5(b) — private-inference latency of searched models vs λ on CIFAR-10.

Regenerates the latency series of the five backbones across the λ sweep and
checks the all-polynomial speedups the paper reports (15x-26x, depending on
backbone) and the absolute all-ReLU latency scale (hundreds of ms to ~1.5 s).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.surrogate import AccuracySurrogate
from repro.evaluation.figures import FIG5B_PAPER, figure5_sweep
from repro.evaluation.report import render_series, render_table


def test_fig5b_latency_vs_lambda(benchmark):
    surrogate = AccuracySurrogate(jitter_std=0.0)
    sweep = benchmark(lambda: figure5_sweep(surrogate=surrogate))

    labels = next(iter(sweep.values())).labels
    emit(
        "Fig. 5(b) searched model 2PC latency vs lambda (ms)",
        render_series({name: s.latency_ms for name, s in sweep.items()}, labels),
    )
    comparison_rows = [
        {
            "backbone": name,
            "all-ReLU measured (ms)": series.all_relu_latency_ms,
            "all-ReLU paper (ms)": FIG5B_PAPER[name]["all_relu_ms"],
            "all-poly speedup measured": series.all_poly_speedup,
            "all-poly speedup paper": FIG5B_PAPER[name]["all_poly_speedup"],
        }
        for name, series in sweep.items()
    ]
    emit("Fig. 5(b) endpoints vs paper", render_table(comparison_rows))

    for name, series in sweep.items():
        # Latency decreases monotonically with the penalty.
        assert series.latency_ms == sorted(series.latency_ms, reverse=True)
        # Speedups land in the paper's order of magnitude.
        assert 8 < series.all_poly_speedup < 60, name
        # Absolute all-ReLU latency within ~3x of the reported number.
        paper_ms = FIG5B_PAPER[name]["all_relu_ms"]
        assert paper_ms / 3 < series.all_relu_latency_ms < 3.2 * paper_ms, name
    # MobileNetV2 is the slowest all-ReLU backbone despite the fewest MACs.
    all_relu = {name: s.all_relu_latency_ms for name, s in sweep.items()}
    assert all_relu["mobilenetv2-cifar"] > all_relu["resnet18-cifar"]
