"""Search-loop cost benchmark.

Times one full Algorithm-1 iteration (architecture update + weight update)
on the tiny supernet, and the end-to-end figure-scale λ-sweep used by the
Fig. 5 benchmarks.  Useful as a regression guard for the numpy engine.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.search import DifferentiablePolynomialSearch, SearchConfig
from repro.core.supernet import Supernet
from repro.core.sweep import lambda_sweep
from repro.data import DataLoader, synthetic_tiny, train_val_split
from repro.models.resnet import resnet50_cifar
from repro.models.vgg import vgg_tiny
from repro.utils import seed_everything


def test_single_search_step(benchmark):
    seed_everything(0)
    dataset = synthetic_tiny(num_samples=64, image_size=8, seed=0)
    train, val = train_val_split(dataset, 0.5, seed=0)
    search = DifferentiablePolynomialSearch(
        Supernet(vgg_tiny(input_size=8)),
        DataLoader(train, batch_size=8, seed=1),
        DataLoader(val, batch_size=8, seed=2),
        SearchConfig(num_steps=1, latency_lambda=1e-2, log_every=0),
    )
    counter = {"step": 0}

    def one_step():
        entry = search.step(counter["step"])
        counter["step"] += 1
        return entry

    entry = benchmark(one_step)
    emit("One Algorithm-1 step", f"train loss {entry.train_loss:.3f}, "
                                 f"expected latency {entry.expected_latency_ms:.2f} ms")


def test_full_backbone_lambda_sweep(benchmark):
    """Latency-model-driven sweep over the largest Fig. 5 backbone."""
    result = benchmark(lambda: lambda_sweep(resnet50_cifar()))
    assert len(result.points) == 6
    assert result.points[0].latency_ms > result.points[-1].latency_ms
