"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md
section 3) and prints the regenerated rows/series so they can be compared
side by side with the published values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.utils import seed_everything


@pytest.fixture(autouse=True)
def _seed_all():
    seed_everything(2023)
    yield


def emit(title: str, text: str) -> None:
    """Print a labelled block (visible with ``pytest -s`` or in benchmark logs)."""
    print(f"\n==== {title} ====\n{text}\n")
