"""Microbenchmarks of the executed 2PC protocol simulation.

Not a paper figure per se, but the substrate's own performance/throughput
characterization: wall-clock of the numpy 2PC simulation for the core
operators (Beaver multiplication, square, DReLU comparison, convolution),
the measured communication per element (compared in EXPERIMENTS.md with the
analytical model's volumes), and the offline/online split of the compiled
plan runtime (compile → preprocess → execute).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.crypto import make_context, share
from repro.crypto.protocols import (
    drelu,
    multiply,
    secure_conv2d_public_weight,
    secure_relu,
    square,
)
from repro.crypto.secure_model import SecureInferenceEngine
from repro.evaluation.report import render_table


@pytest.fixture()
def payload():
    rng = np.random.default_rng(0)
    ctx = make_context(seed=1)
    x = rng.uniform(-2, 2, size=(1, 4, 8, 8))
    return ctx, rng, x


def test_beaver_multiply_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    benchmark(lambda: multiply(ctx, shared, shared))


def test_square_protocol_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    benchmark(lambda: square(ctx, shared))


def test_drelu_comparison_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    benchmark(lambda: drelu(ctx, shared))


def test_secure_conv_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    weight = rng.normal(size=(8, 4, 3, 3)) * 0.3
    benchmark(lambda: secure_conv2d_public_weight(ctx, shared, weight, padding=1))


def test_relu_communication_per_element(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)

    def run():
        ctx.reset_communication()
        secure_relu(ctx, shared)
        return ctx.communication_bytes

    total_bytes = benchmark(run)
    per_element = total_bytes / x.size
    emit(
        "Executed 2PC-ReLU communication",
        render_table(
            [{"elements": x.size, "total bytes": total_bytes, "bytes/element": per_element}]
        ),
    )
    # The executed simulation uses the 64-bit CrypTen-style ring with the
    # packed sub-byte wire format: ~62.5 bytes/element for the comparison
    # (2-bit OT tables + 1-bit tree openings), ~0.25 for the daBit B2A and
    # 32 for the ring-width multiplexer — ~95 in total, well below the
    # paper's unpacked 32-bit OT-flow volume of ~324 bytes/element.
    assert 50 < per_element < 500


def test_plan_offline_online_split():
    """Compile → preprocess → execute, with offline and online reported apart.

    The offline phase (plan compilation + correlated-randomness generation)
    runs ahead of the query; the online phase is the client-visible latency.
    The manifest predicts the online bytes exactly.
    """
    from repro.models import build_model, export_layer_weights
    from repro.models.vgg import vgg_tiny
    from repro.nn.tensor import Tensor

    spec = vgg_tiny(input_size=8).with_all_polynomial()
    net = build_model(spec)
    net(Tensor(np.random.default_rng(0).normal(size=(4, 3, 8, 8))))
    net.eval()
    weights = export_layer_weights(net)
    x = np.random.default_rng(1).normal(size=(2, 3, 8, 8))

    engine = SecureInferenceEngine(make_context(seed=3))
    start = time.perf_counter()
    plan = engine.compile(spec, batch_size=2)
    compile_s = time.perf_counter() - start
    start = time.perf_counter()
    pool = engine.preprocess(plan)
    preprocess_s = time.perf_counter() - start
    start = time.perf_counter()
    result = engine.execute(plan, weights, x, pool=pool)
    online_s = time.perf_counter() - start

    emit(
        "Offline/online split of one compiled private inference "
        f"({spec.name}, batch=2)",
        render_table(
            [
                {
                    "phase": "offline: compile",
                    "time (ms)": round(1e3 * compile_s, 2),
                    "bytes": 0,
                },
                {
                    "phase": "offline: preprocess (randomness material)",
                    "time (ms)": round(1e3 * preprocess_s, 2),
                    "bytes": result.offline_material_bytes,
                },
                {
                    "phase": "online: execute",
                    "time (ms)": round(1e3 * online_s, 2),
                    "bytes": result.communication_bytes,
                },
            ]
        ),
    )
    assert result.communication_bytes == plan.online_bytes
    # sequential execution logs the legacy (uncoalesced) round count
    assert result.communication_rounds == plan.legacy_online_rounds
    assert result.offline_material_bytes > 0
