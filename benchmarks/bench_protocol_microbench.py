"""Microbenchmarks of the executed 2PC protocol simulation.

Not a paper figure per se, but the substrate's own performance/throughput
characterization: wall-clock of the numpy 2PC simulation for the core
operators (Beaver multiplication, square, DReLU comparison, convolution) and
the measured communication per element, which EXPERIMENTS.md compares with
the analytical model's per-element volumes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.crypto import make_context, share
from repro.crypto.protocols import (
    drelu,
    multiply,
    secure_conv2d_public_weight,
    secure_relu,
    square,
)
from repro.evaluation.report import render_table


@pytest.fixture()
def payload():
    rng = np.random.default_rng(0)
    ctx = make_context(seed=1)
    x = rng.uniform(-2, 2, size=(1, 4, 8, 8))
    return ctx, rng, x


def test_beaver_multiply_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    benchmark(lambda: multiply(ctx, shared, shared))


def test_square_protocol_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    benchmark(lambda: square(ctx, shared))


def test_drelu_comparison_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    benchmark(lambda: drelu(ctx, shared))


def test_secure_conv_throughput(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)
    weight = rng.normal(size=(8, 4, 3, 3)) * 0.3
    benchmark(lambda: secure_conv2d_public_weight(ctx, shared, weight, padding=1))


def test_relu_communication_per_element(benchmark, payload):
    ctx, rng, x = payload
    shared = share(x, ctx.ring, rng)

    def run():
        ctx.reset_communication()
        secure_relu(ctx, shared)
        return ctx.communication_bytes

    total_bytes = benchmark(run)
    per_element = total_bytes / x.size
    emit(
        "Executed 2PC-ReLU communication",
        render_table(
            [{"elements": x.size, "total bytes": total_bytes, "bytes/element": per_element}]
        ),
    )
    # The executed simulation uses the 64-bit CrypTen-style ring, so the
    # per-element volume is of the same order as (though not identical to)
    # the paper's 32-bit OT-flow volume of ~324 bytes/element.
    assert 100 < per_element < 5000
