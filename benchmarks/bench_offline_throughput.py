"""Offline randomness-factory benchmark: vectorized generation throughput,
streamed provisioning and online-serving isolation.

Four phases, mirroring the acceptance criteria of the correlated-randomness
factory work:

1. **per-kind generation throughput** — for every pool kind, items/second
   of the per-item fill (one generator call per item, the historical dealer
   loop) vs the vectorized fill (one stacked call per group).  Both draw
   from the same substream, so the material is bit-identical and only the
   call granularity differs.  Acceptance: >= 3x on the *linear* kinds
   (``triple``/``square``, the ring-arithmetic groups the zoo consumes in
   bulk);
2. **jobs servable per second of preprocessing** — per zoo model (ReLU and
   all-polynomial variants), the wall-clock of one full vectorized
   manifest preprocess vs the per-item fill, and its inverse: how many
   job pools one dealer core provisions per second.  The manifest hash and
   material bytes are recorded (deterministic, gated exactly in CI);
3. **online-qps isolation under concurrent factory generation** — a
   persistent two-process serving pool is measured alone, then with a
   nice(19) factory producer saturating the remaining CPU with bundle
   generation.  Acceptance: the online qps dip stays under 10% and the
   producer actually spools bundles;
4. **zoo-wide bit-identity with factory-provisioned pools** — for every
   zoo model/variant the logits must be bit-identical to the sequential
   compiled reference when the correlated randomness is (a) generated
   locally, (b) fetched from the factory for a scheduled in-process run,
   (c) fetched party-restricted by two loopback party threads, and
   (d) streamed to a two-process TCP serving pool configured with
   ``factory_address``.  Exits non-zero on any divergence.

Run with:  PYTHONPATH=src python benchmarks/bench_offline_throughput.py
Optionally ``--json out.json`` writes the measurements (schema
``serving-bench/v1``, kind ``offline_throughput``) for CI artifacts; CI
compares them against ``benchmarks/baselines/offline_throughput.json`` via
``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto import PartyChannel, TwoPartyContext, make_context, optimize_plan
from repro.crypto.dealer import TrustedDealer
from repro.crypto.plan import compile_plan
from repro.crypto.ring import DEFAULT_RING, FixedPointRing
from repro.crypto.secure_model import SecureInferenceEngine
from repro.crypto.sharing import share
from repro.crypto.transport import LoopbackTransport
from repro.models import build_model, export_layer_weights, get_backbone
from repro.nn.tensor import Tensor
from repro.offline.factory import FactoryClient, FactoryServer, RandomnessFactory
from repro.offline.generation import draw_group, substream
from repro.offline.inventory import InventoryStore, PoolBundle
from repro.runtime.party import execute_plan_as_party
from repro.serve import ServableModel, ShardedServingPool
from repro.utils import seed_everything

#: zoo models covered by the preprocessing and bit-identity phases
ZOO_MODELS = ("vgg-tiny", "resnet-tiny", "mobilenetv2-tiny")

SCHEMA = "serving-bench/v1"

#: ring-arithmetic group kinds generated in bulk — the gated class
LINEAR_KINDS = ("triple", "square")

#: per-kind item shape of the throughput phase (small on purpose: the
#: per-item path's cost is interpreter overhead, which small items expose)
KIND_SHAPES = {
    "triple": (8, 8),
    "square": (8, 8),
    "bit": (64,),
    "dabit": (64,),
}


def _trained_servable(name: str, input_size: int, polynomial: bool) -> ServableModel:
    spec = get_backbone(name, input_size=input_size)
    if polynomial:
        spec = spec.with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):  # move BN running stats off their init values
        net(Tensor(rng.normal(size=(4, spec.in_channels, input_size, input_size))))
    net.eval()
    return ServableModel(spec, export_layer_weights(net))


# --------------------------------------------------------------------------- #
# Phase 1: per-kind generation throughput
# --------------------------------------------------------------------------- #
def measure_kind_throughput(
    kind: str, shape: Tuple[int, ...], items: int, repeats: int, seed: int
) -> Dict[str, object]:
    """Best-of-N per-item vs vectorized wall clock of one group."""
    ring = DEFAULT_RING
    best_per_item = float("inf")
    best_vectorized = float("inf")
    for _ in range(repeats):
        stream = substream(seed, ring, kind, shape)

        rng = np.random.default_rng(stream)
        start = time.perf_counter()
        singles = [draw_group(ring, rng, kind, shape, 1) for _ in range(items)]
        best_per_item = min(best_per_item, time.perf_counter() - start)

        rng = np.random.default_rng(stream)
        start = time.perf_counter()
        stacked = draw_group(ring, rng, kind, shape, items)
        best_vectorized = min(best_vectorized, time.perf_counter() - start)

        # both paths must produce the same bits — the layout invariant
        for name, stack in stacked.items():
            merged = np.concatenate([one[name] for one in singles])
            if not np.array_equal(stack, merged):
                raise SystemExit(
                    f"vectorized {kind} generation diverged from the "
                    f"per-item fill on field {name!r}"
                )
    return {
        "shape": list(shape),
        "items": items,
        "per_item_s": best_per_item,
        "vectorized_s": best_vectorized,
        "per_item_items_per_s": items / best_per_item if best_per_item else 0.0,
        "vectorized_items_per_s": items / best_vectorized if best_vectorized else 0.0,
        "speedup": best_per_item / best_vectorized if best_vectorized else 0.0,
    }


# --------------------------------------------------------------------------- #
# Phase 2: jobs servable per second of preprocessing, per zoo model
# --------------------------------------------------------------------------- #
def measure_model_preprocess(
    servable: ServableModel, batch: int, repeats: int, seed: int
) -> Dict[str, object]:
    manifest = compile_plan(servable.spec, batch_size=batch).manifest
    best = {"per_item": float("inf"), "vectorized": float("inf")}
    for _ in range(repeats):
        for mode, vectorized in (("per_item", False), ("vectorized", True)):
            dealer = TrustedDealer(manifest.ring, seed=seed)
            start = time.perf_counter()
            dealer.preprocess(manifest, vectorized=vectorized)
            best[mode] = min(best[mode], time.perf_counter() - start)
    vectorized = best["vectorized"]
    return {
        "manifest_hash": manifest.content_hash,
        "material_bytes": manifest.material_bytes,
        "requests": len(manifest.requests),
        "per_item_s": best["per_item"],
        "vectorized_s": vectorized,
        "jobs_per_preprocess_second": 1.0 / vectorized if vectorized else 0.0,
        "speedup": best["per_item"] / vectorized if vectorized else 0.0,
    }


# --------------------------------------------------------------------------- #
# Phase 3: online qps isolation under concurrent factory generation
# --------------------------------------------------------------------------- #
def _producer_main(
    root: str,
    ring_bits: int,
    frac_bits: int,
    manifest_hash: str,
    groups: List,
    stop: "mp.Event",
    produced: "mp.Value",
    nice_level: int,
) -> None:
    """Saturating factory producer, run in a low-priority subprocess."""
    try:
        os.nice(nice_level)
    except OSError:  # pragma: no cover - permission-restricted hosts
        pass
    ring = FixedPointRing(ring_bits=ring_bits, frac_bits=frac_bits)
    store = InventoryStore(root)
    wire_groups = [(kind, tuple(shape), int(count)) for kind, shape, count in groups]
    seed = 1_000_000
    while not stop.is_set():
        bundle = PoolBundle.from_groups(ring, manifest_hash, wire_groups, seed)
        store.put(bundle)
        with produced.get_lock():
            produced.value += 1
        seed += 1


def _measure_qps(
    pool: ShardedServingPool, model: str, inputs: np.ndarray, jobs: int
) -> float:
    batch = int(inputs.shape[0])
    start = time.perf_counter()
    for _ in range(jobs):
        pool.run_batch(model, inputs)
    return jobs * batch / (time.perf_counter() - start)


def measure_concurrency_dip(
    servable: ServableModel,
    batch: int,
    jobs: int,
    seed: int,
    nice_level: int = 19,
) -> Dict[str, object]:
    spec = servable.spec
    inputs = np.random.default_rng(50).normal(
        size=(batch, spec.in_channels, spec.input_size, spec.input_size)
    )
    manifest = compile_plan(spec, batch_size=batch).manifest
    with tempfile.TemporaryDirectory() as root:
        with ShardedServingPool(
            {"bench": servable},
            num_shards=1,
            max_batch=batch,
            provision_pools=1,
            warm_batch_sizes=(batch,),
            seed=seed,
        ) as pool:
            _measure_qps(pool, "bench", inputs, max(jobs // 2, 2))  # warm-up
            baseline_qps = max(
                _measure_qps(pool, "bench", inputs, jobs) for _ in range(2)
            )

            stop = mp.Event()
            produced = mp.Value("i", 0)
            producer = mp.Process(
                target=_producer_main,
                args=(
                    root,
                    manifest.ring.ring_bits,
                    manifest.ring.frac_bits,
                    manifest.content_hash,
                    manifest.grouped_requests(),
                    stop,
                    produced,
                    nice_level,
                ),
                daemon=True,
            )
            producer.start()
            try:
                time.sleep(0.2)  # let the producer reach steady state
                concurrent_qps = max(
                    _measure_qps(pool, "bench", inputs, jobs) for _ in range(2)
                )
            finally:
                stop.set()
                producer.join(timeout=30.0)
                if producer.is_alive():  # pragma: no cover - stuck producer
                    producer.terminate()
        bundles_generated = int(produced.value)
    dip = 1.0 - concurrent_qps / baseline_qps if baseline_qps else 1.0
    return {
        "model": spec.name,
        "producer_nice": nice_level,
        "jobs": jobs,
        "baseline_qps": baseline_qps,
        "concurrent_qps": concurrent_qps,
        "qps_dip": dip,
        "bundles_generated": bundles_generated,
    }


# --------------------------------------------------------------------------- #
# Phase 4: zoo-wide bit-identity with factory-provisioned pools
# --------------------------------------------------------------------------- #
def _loopback_factory_logits(
    servable: ServableModel,
    inputs: np.ndarray,
    seed: int,
    client: FactoryClient,
) -> np.ndarray:
    """Scheduled plan over loopback, pools fetched party-restricted."""
    ring = DEFAULT_RING
    batch = int(inputs.shape[0])
    client_rng = np.random.default_rng(seed + 1)
    shared = share(np.asarray(inputs, dtype=np.float64), ring, client_rng)
    plan = optimize_plan(compile_plan(servable.spec, batch_size=batch, ring=ring))
    transports = LoopbackTransport.pair(timeout=60.0)
    executions: Dict[int, object] = {}
    errors: Dict[int, BaseException] = {}

    def run(party: int, input_share: np.ndarray) -> None:
        try:
            channel = PartyChannel(transports[party], party, ring=ring)
            ctx = TwoPartyContext(ring=ring, seed=seed, channel=channel)
            pool = client.fetch_pool(plan.manifest, seed, party=party)
            executions[party] = execute_plan_as_party(
                ctx, party, plan, servable.weights, input_share, pool=pool
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors[party] = exc
        finally:
            transports[party].close()

    threads = [
        threading.Thread(target=run, args=(party, input_share))
        for party, input_share in ((0, shared.share0), (1, shared.share1))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    if errors:
        raise RuntimeError(f"loopback party failed: {errors}")
    return ring.decode(
        ring.add(executions[0].logit_share, executions[1].logit_share)
    )


def verify_zoo_bit_identity(
    models: Tuple[str, ...],
    input_size: int,
    batch: int,
    seed: int,
    include_tcp: bool = True,
) -> List[Dict[str, object]]:
    """Factory-provisioned executions == the sequential compiled path."""
    checked: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory() as root:
        factory = RandomnessFactory(InventoryStore(root))
        with FactoryServer(factory, "127.0.0.1", 0) as server:
            client = FactoryClient(server.address)
            for name in models:
                for polynomial in (False, True):
                    servable = _trained_servable(name, input_size, polynomial)
                    spec = servable.spec
                    label = f"{spec.name}-poly" if polynomial else spec.name
                    x = np.random.default_rng(100).normal(
                        size=(batch, spec.in_channels, input_size, input_size)
                    )

                    # mode 1 — sequential compiled path, local dealer: the
                    # reference semantics every other mode must reproduce
                    sequential = SecureInferenceEngine(make_context(seed=seed))
                    plan = sequential.compile(spec, batch_size=batch)
                    reference = sequential.execute(
                        plan, servable.weights, x, pool=sequential.preprocess(plan)
                    )

                    # mode 2 — scheduled in-process, pool streamed from the
                    # factory at the engine's dealer seed
                    engine = SecureInferenceEngine(make_context(seed=seed))
                    splan = engine.compile(spec, batch_size=batch, optimize=True)
                    factory_pool = client.fetch_pool(splan.manifest, seed)
                    scheduled = engine.execute(
                        splan, servable.weights, x, pool=factory_pool
                    )

                    # mode 3 — loopback party threads, party-restricted fetch
                    loopback_logits = _loopback_factory_logits(
                        servable, x, seed, client
                    )

                    # mode 4 — two OS processes + TCP, factory-provisioned
                    if include_tcp:
                        with ShardedServingPool(
                            {"bench": servable},
                            num_shards=1,
                            max_batch=batch,
                            provision_pools=1,
                            warm_batch_sizes=(batch,),
                            seed=seed,
                            factory_address=server.address,
                        ) as pool:
                            result = pool.run_batch("bench", x)
                            tcp_stats = pool.stats_snapshot()
                        # replay the job's pinned seed on the in-process
                        # engine: the served logits must match bit for bit
                        replay = SecureInferenceEngine(make_context(seed=result.seed))
                        rplan = replay.compile(spec, batch_size=batch)
                        replayed = replay.execute(
                            rplan, servable.weights, x,
                            pool=replay.preprocess(rplan),
                        )
                        tcp_identical = bool(
                            np.array_equal(result.logits, replayed.logits)
                        )
                        tcp_from_factory = int(tcp_stats["pools_from_factory"])
                    else:
                        tcp_identical, tcp_from_factory = True, None

                    modes = {
                        "scheduled_factory": bool(
                            np.array_equal(scheduled.logits, reference.logits)
                        ),
                        "loopback_factory": bool(
                            np.array_equal(loopback_logits, reference.logits)
                        ),
                        "tcp_factory": tcp_identical,
                    }
                    checked.append(
                        {
                            "model": label,
                            "bit_identical": all(modes.values()),
                            "modes": modes,
                            "tcp_pools_from_factory": tcp_from_factory,
                        }
                    )
                    if not all(modes.values()):
                        diverged = [m for m, ok in modes.items() if not ok]
                        raise SystemExit(
                            f"factory-provisioned execution of {label} diverged "
                            f"from the sequential path in mode(s): {diverged}"
                        )
            client.close()
    return checked


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def run_benchmark(
    models: Tuple[str, ...] = ZOO_MODELS,
    input_size: int = 8,
    batch: int = 2,
    items: int = 256,
    repeats: int = 3,
    jobs: int = 8,
    seed: int = 11,
    skip_concurrency: bool = False,
    skip_zoo_check: bool = False,
    skip_tcp: bool = False,
) -> dict:
    seed_everything(1)
    kinds = {
        kind: measure_kind_throughput(kind, shape, items, repeats, seed)
        for kind, shape in KIND_SHAPES.items()
    }
    min_linear = min(kinds[kind]["speedup"] for kind in LINEAR_KINDS)

    model_entries: Dict[str, Dict[str, object]] = {}
    for name in models:
        for polynomial in (False, True):
            servable = _trained_servable(name, input_size, polynomial)
            label = (
                f"{servable.spec.name}-poly" if polynomial else servable.spec.name
            )
            model_entries[label] = measure_model_preprocess(
                servable, batch, repeats, seed
            )

    concurrency: Optional[Dict[str, object]] = None
    if not skip_concurrency:
        servable = _trained_servable(models[0], input_size, polynomial=False)
        concurrency = measure_concurrency_dip(servable, batch, jobs, seed)

    zoo_check = (
        None
        if skip_zoo_check
        else verify_zoo_bit_identity(
            models, input_size, batch, seed, include_tcp=not skip_tcp
        )
    )
    return {
        "schema": SCHEMA,
        "kind": "offline_throughput",
        "config": {
            "models": list(models),
            "input_size": input_size,
            "batch": batch,
            "items": items,
            "repeats": repeats,
            "jobs": jobs,
            "seed": seed,
        },
        "kinds": kinds,
        "min_linear_speedup": min_linear,
        "models": model_entries,
        "concurrency": concurrency,
        "zoo_bit_identity": zoo_check,
        "workers": [],
    }


def print_report(report: dict) -> None:
    print("== offline generation throughput (best-of-N, same substream) ==")
    print(
        f"{'kind':<10} {'shape':<10} {'per-item it/s':>14} {'vectorized it/s':>16} "
        f"{'speedup':>8}"
    )
    for kind, entry in report["kinds"].items():
        print(
            f"{kind:<10} {str(tuple(entry['shape'])):<10} "
            f"{entry['per_item_items_per_s']:>14.0f} "
            f"{entry['vectorized_items_per_s']:>16.0f} {entry['speedup']:>7.2f}x"
        )
    print(
        f"\nminimum linear-kind speedup: {report['min_linear_speedup']:.2f}x"
    )

    print("\n== jobs servable per second of preprocessing ==")
    print(
        f"{'model':<24} {'per-item ms':>12} {'vectorized ms':>14} {'jobs/s':>8} "
        f"{'speedup':>8}"
    )
    for model, entry in report["models"].items():
        print(
            f"{model:<24} {entry['per_item_s'] * 1e3:>12.2f} "
            f"{entry['vectorized_s'] * 1e3:>14.2f} "
            f"{entry['jobs_per_preprocess_second']:>8.1f} {entry['speedup']:>7.2f}x"
        )

    concurrency = report.get("concurrency")
    if concurrency is not None:
        print(
            f"\nonline qps with concurrent nice({concurrency['producer_nice']}) "
            f"factory generation: {concurrency['baseline_qps']:.2f} -> "
            f"{concurrency['concurrent_qps']:.2f} "
            f"(dip {concurrency['qps_dip']:.1%}, "
            f"{concurrency['bundles_generated']} bundles spooled)"
        )
    if report["zoo_bit_identity"] is not None:
        identical = sum(1 for c in report["zoo_bit_identity"] if c["bit_identical"])
        print(
            f"zoo bit-identity: {identical}/{len(report['zoo_bit_identity'])} "
            "factory-provisioned executions identical to the sequential path "
            "in every mode"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--models", default=",".join(ZOO_MODELS),
        help="comma-separated zoo model names",
    )
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument(
        "--items", type=int, default=256,
        help="items per group of the per-kind throughput phase",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--jobs", type=int, default=8,
        help="jobs per qps sample of the concurrency phase",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--skip-concurrency", action="store_true")
    parser.add_argument("--skip-zoo-check", action="store_true")
    parser.add_argument(
        "--skip-tcp", action="store_true",
        help="skip the two-OS-process TCP mode of the bit-identity phase",
    )
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args()

    report = run_benchmark(
        models=tuple(name for name in args.models.split(",") if name),
        input_size=args.input_size,
        batch=args.batch,
        items=args.items,
        repeats=args.repeats,
        jobs=args.jobs,
        seed=args.seed,
        skip_concurrency=args.skip_concurrency,
        skip_zoo_check=args.skip_zoo_check,
        skip_tcp=args.skip_tcp,
    )
    print_report(report)

    # write the artifact before the acceptance gates: a failing run is
    # exactly the one whose measurements must survive for triage
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote measurements to {args.json_path}")

    # The vectorized fill's advantage is interpreter-overhead elimination on
    # the bulk ring-arithmetic kinds; the committed-baseline ratio is gated
    # separately by tools/check_bench_regression.py.
    if report["min_linear_speedup"] < 3.0:
        raise SystemExit(
            f"minimum linear-kind generation speedup "
            f"{report['min_linear_speedup']:.2f}x is below the 3x acceptance "
            "floor"
        )
    concurrency = report.get("concurrency")
    if concurrency is not None:
        if concurrency["qps_dip"] >= 0.10:
            raise SystemExit(
                f"online qps dipped {concurrency['qps_dip']:.1%} under "
                "concurrent factory generation — the producer must stay "
                "under the 10% isolation budget"
            )
        if concurrency["bundles_generated"] <= 0:
            raise SystemExit(
                "the factory producer spooled zero bundles during the "
                "concurrency phase — the isolation result is vacuous"
            )


if __name__ == "__main__":
    main()
