"""Figure 6 — accuracy vs ReLU-count trade-off and Pareto frontier on CIFAR-10.

Regenerates the per-backbone accuracy-vs-ReLU traces and the combined Pareto
frontier, and checks the figure's message: accuracy stays near the baseline
even under aggressive ReLU reduction.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.surrogate import AccuracySurrogate
from repro.evaluation.figures import accuracy_at_budget, figure6_pareto
from repro.evaluation.report import render_table


def test_fig6_relu_pareto(benchmark):
    surrogate = AccuracySurrogate(jitter_std=0.0)
    result = benchmark(lambda: figure6_pareto(num_points=12, surrogate=surrogate))

    frontier = result["frontier"]
    emit(
        "Fig. 6 Pareto frontier (ReLU count [k] vs top-1 %)",
        render_table(
            [{"relu_k": p.cost, "accuracy": p.accuracy, "backbone": p.label} for p in frontier]
        ),
    )

    best = max(p.accuracy for p in frontier)
    # Aggressive reduction: even at a 10k-ReLU budget the frontier stays
    # within ~2 points of the best model (the paper's "best performance"
    # region spans 1k-1000k ReLUs with accuracy between ~92.5 and ~95.5).
    assert best - accuracy_at_budget(frontier, budget_k=10.0) < 2.0
    assert best > 94.5
    # Every Fig. 5 backbone contributes a trace.
    assert len(result["traces"]) == 5
    # The frontier spans at least two orders of magnitude of ReLU counts.
    costs = [p.cost for p in frontier if p.cost > 0]
    assert max(costs) / max(min(costs), 1e-9) > 10
