"""Ablation — STPAI vs naive polynomial initialization (DESIGN.md §4.1).

The paper's first contribution is the straight-through polynomial activation
initialization.  This ablation finetunes the same all-polynomial tiny VGG
twice — once STPAI-initialized, once with random polynomial coefficients —
on the synthetic CIFAR-10-like dataset and compares the finetuned accuracy
and how far the initial network output deviates from the ReLU reference.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.core.finetune import TrainConfig, Trainer
from repro.core.stpai import naive_initialize, stpai_initialize
from repro.data import DataLoader, synthetic_tiny, train_val_split
from repro.evaluation.report import render_table
from repro.models.builder import build_model
from repro.models.vgg import vgg_tiny
from repro.nn.tensor import Tensor
from repro.utils import seed_everything


def _run_ablation():
    dataset = synthetic_tiny(num_samples=128, image_size=8, seed=5, noise_std=0.25)
    train, val = train_val_split(dataset, 0.5, seed=0)
    train_loader = DataLoader(train, batch_size=16, seed=1)
    val_loader = DataLoader(val, batch_size=16, seed=2)
    spec = vgg_tiny(input_size=8).with_all_polynomial()

    results = {}
    for name, init_fn in (("STPAI", stpai_initialize), ("naive", naive_initialize)):
        seed_everything(0)
        model = build_model(spec)
        init_fn(model, seed=0)
        # How far the initialized activation is from the identity (pass-through)
        # on a probe tensor — the property STPAI is designed to guarantee.
        from repro.core.stpai import iter_x2act

        probe = np.random.default_rng(0).normal(size=(4, 256))
        deviations = []
        for act in iter_x2act(model):
            out = act(Tensor(probe)).data
            deviations.append(float(np.abs(out - probe).mean()))
        identity_deviation = float(np.mean(deviations))
        history = Trainer(TrainConfig(epochs=4, lr=0.08)).train(model, train_loader, val_loader)
        results[name] = {
            "init": name,
            "identity deviation": identity_deviation,
            "best val acc": history.best_val_accuracy,
            "final train loss": history.train_loss[-1],
        }
    return results


def test_ablation_stpai_vs_naive_initialization(benchmark):
    results = benchmark(_run_ablation)
    emit("STPAI ablation", render_table(list(results.values())))
    # STPAI starts at a near-identity operating point (the straight-through
    # property), the naive polynomial initialization does not …
    assert results["STPAI"]["identity deviation"] < 0.01
    assert results["naive"]["identity deviation"] > 10 * results["STPAI"]["identity deviation"]
    # … and STPAI finetunes to at least as good an accuracy.
    assert results["STPAI"]["best val acc"] >= results["naive"]["best val acc"]
