"""Throughput scaling of the sharded serving pool vs. shard count.

Three serving tiers are measured on the same query stream:

1. **sequential** — the PR-2 baseline: one batch-1 in-process plan
   execution per query (pools pre-provisioned);
2. **batched-1worker** — the PR-2 batched frontend: one in-process worker
   consuming coalesced batches;
3. **pool-N** — the sharded pool: N persistent two-process worker pairs
   behind the same coalescing frontend, jobs routed to idle shards.

The pool runs with a simulated inter-party ``--link-latency-ms`` (default
5 ms one-way, a same-region LAN/WAN figure) because deployed 2PC serving is
round-trip-bound: that is the regime where horizontal sharding pays, and
the regime the paper's latency model targets.  Localhost-only numbers
(``--link-latency-ms 0``) degenerate to a CPU benchmark of the host.

Before measuring, a correctness phase executes every zoo model on a
persistent pool and asserts **bit-identity** with the in-process compiled
engine at the job's derived seed, and that the pool spawned **zero
processes after boot** (persistent servers, no per-request spawn).

Run with:  PYTHONPATH=src python benchmarks/bench_pool_scaling.py
Optionally ``--json out.json`` writes the measurements (schema
``serving-bench/v1``, documented in docs/serving.md) for CI artifacts.

``--overload`` switches to the **control-plane overload regime** instead:
the asyncio :class:`~repro.serve.daemon.ServingDaemon` is driven at many
times its service rate by concurrent framed clients, and the report
(``kind: control_plane``) captures the admission-control contract — every
submission resolves to logits or an explicit backpressure verdict
(``client_failures`` must be zero), the shed ratio stays bounded, accepted
throughput plateaus at the calibrated service rate instead of collapsing,
and sampled accepted jobs replay bit-identically at their job seeds.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import threading
import time
from typing import Dict, List

import numpy as np

from repro.crypto import make_context
from repro.crypto.secure_model import SecureInferenceEngine
from repro.crypto.transport import FaultPlan
from repro.models import build_model, export_layer_weights, get_backbone
from repro.nn.tensor import Tensor
from repro.serve import (
    BackpressureError,
    BatchingFrontend,
    DaemonClient,
    ServableModel,
    ServingDaemon,
    ShardedServingPool,
)
from repro.utils import seed_everything

#: zoo models exercised by the bit-identity phase (numpy-trainable tinies)
ZOO_MODELS = ("vgg-tiny", "resnet-tiny", "mobilenetv2-tiny")

SCHEMA = "serving-bench/v1"


def _trained_servable(name: str, input_size: int, polynomial: bool) -> ServableModel:
    spec = get_backbone(name, input_size=input_size)
    if polynomial:
        spec = spec.with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):  # move BN running stats off their init values
        net(Tensor(rng.normal(size=(4, spec.in_channels, input_size, input_size))))
    net.eval()
    return ServableModel(spec, export_layer_weights(net))


def verify_zoo_bit_identity(input_size: int, seed: int) -> Dict[str, object]:
    """Every zoo model, twice, on one persistent pool: bit-identical + warm."""
    models = {
        name: _trained_servable(name, input_size, polynomial=True)
        for name in ZOO_MODELS
    }
    checked: List[Dict[str, object]] = []
    serving_pids: set = set()
    with ShardedServingPool(
        models, num_shards=1, max_batch=2, provision_pools=2,
        warm_batch_sizes=(2,), seed=seed,
    ) as pool:
        pids_after_boot = {p.pid for p in mp.active_children()}
        for name, servable in models.items():
            spec = servable.spec
            for repeat in range(2):  # two jobs per model over ONE connection
                x = np.random.default_rng(100 + repeat).normal(
                    size=(2, spec.in_channels, input_size, input_size)
                )
                result = pool.run_batch(name, x)
                serving_pids.update(result.worker_pids)
                engine = SecureInferenceEngine(make_context(seed=result.seed))
                plan = engine.compile(spec, batch_size=2)
                reference = engine.execute(
                    plan, servable.weights, x, pool=engine.preprocess(plan)
                )
                identical = bool(np.array_equal(result.logits, reference.logits))
                checked.append(
                    {"model": spec.name, "repeat": repeat, "bit_identical": identical}
                )
                if not identical:
                    raise SystemExit(
                        f"pool execution of {name} diverged from the "
                        f"in-process compiled path at seed {result.seed}"
                    )
        pids_after_jobs = {p.pid for p in mp.active_children()}
        snapshot = pool.stats_snapshot()
    jobs = snapshot["jobs_executed"]
    # Falsifiable zero-spawn check: every job must have been served by the
    # same two OS processes that existed right after boot, and the set of
    # live children must not have grown while jobs ran.
    if len(serving_pids) != 2:
        raise SystemExit(
            f"{jobs} jobs were served by {len(serving_pids)} distinct "
            f"processes — persistent servers must serve from exactly 2"
        )
    new_children = pids_after_jobs - pids_after_boot
    if new_children:
        raise SystemExit(
            f"{len(new_children)} process(es) were spawned while serving "
            f"{jobs} jobs — the serving path must not spawn"
        )
    return {
        "checked": checked,
        "jobs_executed": jobs,
        "processes_spawned": snapshot["processes_spawned"],
        "distinct_serving_pids": len(serving_pids),
        "per_request_process_spawns": len(new_children) / max(jobs, 1),
    }


def _worker_records(pool: ShardedServingPool) -> List[Dict[str, object]]:
    """Per-worker timing records of the shared ``serving-bench/v1`` schema."""
    records: List[Dict[str, object]] = []
    for shard in pool._shards:
        if shard is None:
            continue
        for party, stats in sorted(shard.final_server_stats.items()):
            records.append(
                {
                    "shard": shard.index,
                    "party": party,
                    "role": "party-server",
                    "jobs_executed": stats.jobs_executed,
                    # genuine per-party online time summed over the jobs —
                    # the same meaning the field has in the two-process
                    # example's workers[] records
                    "online_seconds": stats.online_seconds,
                    "offline_seconds": None,  # provisioning runs in background
                    "payload_bytes_sent": stats.payload_bytes_sent,
                    "control_bytes_sent": stats.control_bytes_sent,
                    "pool_hits": stats.pool_hits,
                    "pool_misses": stats.pool_misses,
                    "pools_provisioned": stats.pools_provisioned,
                }
            )
    return records


def run_benchmark(
    model: str = "vgg-tiny",
    input_size: int = 8,
    num_queries: int = 48,
    max_batch: int = 4,
    max_wait: float = 0.03,
    shard_counts: List[int] = (1, 2, 4),
    link_latency_ms: float = 5.0,
    seed: int = 0,
    skip_zoo_check: bool = False,
    shaped_shard_counts: List[int] = (1, 2),
    shaped_latency_ms: float = 20.0,
    shaped_jitter_ms: float = 5.0,
    shaped_bandwidth_mbps: float = 200.0,
    shaped_queries: int = 24,
    skip_shaped: bool = False,
) -> dict:
    seed_everything(1)
    servable = _trained_servable(model, input_size, polynomial=True)
    spec = servable.spec
    models = {model: servable}
    queries = np.random.default_rng(3).normal(
        size=(num_queries, spec.in_channels, input_size, input_size)
    )

    zoo_check = None
    if not skip_zoo_check:
        zoo_check = verify_zoo_bit_identity(input_size, seed)

    # -- PR-2 baseline 1: sequential batch-1 in-process executions ----------- #
    engine = SecureInferenceEngine(make_context(seed=seed))
    plan1 = engine.compile(spec, batch_size=1)
    pools = [engine.preprocess(plan1) for _ in range(num_queries)]  # offline
    latencies = []
    seq_start = time.perf_counter()
    for i in range(num_queries):
        t0 = time.perf_counter()
        engine.execute(plan1, servable.weights, queries[i : i + 1], pool=pools[i])
        latencies.append(time.perf_counter() - t0)
    seq_seconds = time.perf_counter() - seq_start
    paths: Dict[str, Dict[str, object]] = {
        "sequential": {
            "queries_per_second": num_queries / seq_seconds,
            "p50_latency_ms": 1e3 * float(np.percentile(latencies, 50)),
            "p95_latency_ms": 1e3 * float(np.percentile(latencies, 95)),
            "total_seconds": seq_seconds,
        }
    }

    # -- PR-2 baseline 2: single in-process worker behind the frontend ------- #
    with BatchingFrontend(
        models,
        max_batch=max_batch,
        max_wait=max_wait,
        provision_pools=max(num_queries // max_batch + 1, 1),
        seed=seed,
    ) as frontend:
        t0 = time.perf_counter()
        futures = frontend.submit_many(model, queries)
        for future in futures:
            future.result(timeout=600)
        total = time.perf_counter() - t0
        stats = frontend.stats.snapshot()
    paths["batched-1worker"] = {
        "queries_per_second": num_queries / total,
        "p50_latency_ms": stats["p50_latency_ms"],
        "p95_latency_ms": stats["p95_latency_ms"],
        "total_seconds": total,
        "mean_batch_size": stats["mean_batch_size"],
    }

    # -- the sharded pool at each shard count --------------------------------- #
    workers: List[Dict[str, object]] = []
    for shards in shard_counts:
        pool = ShardedServingPool(
            models,
            num_shards=shards,
            max_batch=max_batch,
            max_wait=max_wait,
            provision_pools=max_batch,
            high_water=max_batch,
            link_latency=link_latency_ms / 1e3,
            seed=seed,
        )
        t0 = time.perf_counter()
        futures = pool.submit_many(model, queries)
        for future in futures:
            future.result(timeout=600)
        total = time.perf_counter() - t0
        snapshot = pool.stats_snapshot()
        pool.close()
        key = f"pool-{shards}shard"
        paths[key] = {
            "queries_per_second": num_queries / total,
            "p50_latency_ms": snapshot["frontend"]["p50_latency_ms"],
            "p95_latency_ms": snapshot["frontend"]["p95_latency_ms"],
            "total_seconds": total,
            "mean_batch_size": snapshot["frontend"]["mean_batch_size"],
            "num_shards": shards,
            "pool_hit_rate": snapshot["pool_hit_rate"],
            "jobs_executed": snapshot["jobs_executed"],
            "processes_spawned": snapshot["processes_spawned"],
            "per_request_process_spawns": max(
                snapshot["processes_spawned"] - 2 * snapshot["shards_booted"], 0
            )
            / max(snapshot["jobs_executed"], 1),
        }
        workers.extend(
            dict(record, path=key) for record in _worker_records(pool)
        )

    # -- shaped-link (WAN-like) regime ---------------------------------------- #
    # Latency + seeded jitter + a bandwidth cap on every frame, both
    # directions, via the fault-injection transport's shaping layer.  This is
    # the round-trip-bound regime where sharding pays hardest, and the one the
    # committed baseline gates: wall-clock here is dominated by injected
    # sleeps, so the 1-shard -> N-shard qps ratio is machine-independent.
    shaped_scaling = None
    if not skip_shaped:
        shape = FaultPlan(
            seed=seed,
            latency_ms=shaped_latency_ms,
            jitter_ms=shaped_jitter_ms,
            bandwidth_bytes_per_s=shaped_bandwidth_mbps * 1e6 / 8.0,
        )
        shaped_stream = queries[:shaped_queries]
        for shards in shaped_shard_counts:
            pool = ShardedServingPool(
                models,
                num_shards=shards,
                max_batch=max_batch,
                max_wait=max_wait,
                provision_pools=max_batch,
                high_water=max_batch,
                link_shape=shape,
                seed=seed,
            )
            t0 = time.perf_counter()
            futures = pool.submit_many(model, shaped_stream)
            for future in futures:
                future.result(timeout=600)
            total = time.perf_counter() - t0
            snapshot = pool.stats_snapshot()
            pool.close()
            key = f"pool-{shards}shard-shaped"
            paths[key] = {
                "queries_per_second": len(shaped_stream) / total,
                "p50_latency_ms": snapshot["frontend"]["p50_latency_ms"],
                "p95_latency_ms": snapshot["frontend"]["p95_latency_ms"],
                "total_seconds": total,
                "mean_batch_size": snapshot["frontend"]["mean_batch_size"],
                "num_shards": shards,
                "jobs_executed": snapshot["jobs_executed"],
                "jobs_retried": snapshot["jobs_retried"],
            }
            workers.extend(
                dict(record, path=key) for record in _worker_records(pool)
            )
        shaped_first = f"pool-{shaped_shard_counts[0]}shard-shaped"
        shaped_last = f"pool-{shaped_shard_counts[-1]}shard-shaped"
        shaped_scaling = {
            "from": shaped_first,
            "to": shaped_last,
            "qps_speedup": (
                paths[shaped_last]["queries_per_second"]
                / paths[shaped_first]["queries_per_second"]
                if paths[shaped_first]["queries_per_second"]
                else 0.0
            ),
            "link": {
                "latency_ms": shaped_latency_ms,
                "jitter_ms": shaped_jitter_ms,
                "bandwidth_mbps": shaped_bandwidth_mbps,
            },
        }

    first = f"pool-{shard_counts[0]}shard"
    last = f"pool-{shard_counts[-1]}shard"
    scaling = (
        paths[last]["queries_per_second"] / paths[first]["queries_per_second"]
        if paths[first]["queries_per_second"]
        else 0.0
    )
    return {
        "schema": SCHEMA,
        "kind": "pool_scaling",
        "model": spec.name,
        "config": {
            "num_queries": num_queries,
            "max_batch": max_batch,
            "max_wait_s": max_wait,
            "shard_counts": list(shard_counts),
            "link_latency_ms": link_latency_ms,
            "seed": seed,
            "shaped_shard_counts": list(shaped_shard_counts),
            "shaped_queries": shaped_queries,
        },
        "paths": paths,
        "workers": workers,
        "scaling": {
            "from": first,
            "to": last,
            "qps_speedup": scaling,
        },
        "shaped_scaling": shaped_scaling,
        "zoo_bit_identity": zoo_check,
    }


# --------------------------------------------------------------------------- #
# Control-plane overload regime
# --------------------------------------------------------------------------- #
def run_overload_benchmark(
    model: str = "vgg-tiny",
    input_size: int = 8,
    shards: int = 2,
    calibration_queries: int = 12,
    overload_threads: int = 8,
    submits_per_thread: int = 6,
    queue_budget: int = 4,
    seed: int = 0,
    replay_samples: int = 2,
) -> dict:
    """Drive the serving daemon far past its service rate and report the
    admission-control contract.

    Phase 1 calibrates the sustainable service rate with one sequential
    client.  Phase 2 offers ``overload_threads * submits_per_thread``
    batch-1 submissions from concurrent framed clients against a
    ``queue_budget``-deep admission queue; shed submissions back off by the
    daemon's ``retry_after_ms`` hint and count as *verdicts*, not failures.
    The gates downstream (``tools/check_bench_regression.py``, kind
    ``control_plane``) are machine-independent: zero client-visible
    failures, a bounded shed ratio, and an accepted-throughput plateau
    ratio (overload qps / calibrated qps) that must not collapse.
    """
    seed_everything(1)
    servable = _trained_servable(model, input_size, polynomial=True)
    spec = servable.spec

    with ServingDaemon(
        {model: servable},
        num_shards=shards,
        max_batch=1,  # one query == one job: accepted rows replay exactly
        max_wait=0.0,
        provision_pools=2,
        seed=seed,
        queue_budget=queue_budget,
    ) as daemon:
        # -- phase 1: calibrate the sustainable service rate ------------------ #
        calibration_latencies: List[float] = []
        rng = np.random.default_rng(7)
        with DaemonClient(*daemon.address) as client:
            t0 = time.perf_counter()
            for _ in range(calibration_queries):
                x = rng.normal(size=(1, spec.in_channels, input_size, input_size))
                start = time.perf_counter()
                client.infer(model, x)
                calibration_latencies.append(time.perf_counter() - start)
            calibration_seconds = time.perf_counter() - t0
        calibration_qps = calibration_queries / calibration_seconds

        # -- phase 2: sustained overload -------------------------------------- #
        accepted: List[dict] = []
        shed: List[float] = []  # retry_after_ms per verdict
        failures: List[str] = []
        lock = threading.Lock()

        def client_loop(worker: int) -> None:
            thread_rng = np.random.default_rng(100 + worker)
            try:
                with DaemonClient(*daemon.address) as load_client:
                    for _ in range(submits_per_thread):
                        x = thread_rng.normal(
                            size=(1, spec.in_channels, input_size, input_size)
                        )
                        start = time.perf_counter()
                        try:
                            result = load_client.infer(model, x)
                        except BackpressureError as verdict:
                            with lock:
                                shed.append(verdict.retry_after_ms)
                            # honor the hint (capped: this is a benchmark,
                            # not a production client)
                            time.sleep(min(verdict.retry_after_ms, 100.0) / 1e3)
                            continue
                        elapsed = time.perf_counter() - start
                        with lock:
                            accepted.append(
                                {
                                    "queries": x,
                                    "job_seed": result.job_seeds[0],
                                    "logits": result.logits,
                                    "latency_s": elapsed,
                                }
                            )
            except Exception as exc:  # noqa: BLE001 — the gated contract
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=client_loop, args=(i,))
            for i in range(overload_threads)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        overload_seconds = time.perf_counter() - t0
        stats = daemon.stats_payload()

    # -- bit-identity spot checks on accepted jobs ----------------------------- #
    bit_identity = []
    for record in accepted[:replay_samples]:
        engine = SecureInferenceEngine(make_context(seed=record["job_seed"]))
        plan = engine.compile(spec, batch_size=1)
        reference = engine.execute(
            plan, servable.weights, record["queries"], pool=engine.preprocess(plan)
        )
        bit_identity.append(
            {
                "job_seed": record["job_seed"],
                "bit_identical": bool(
                    np.array_equal(record["logits"], reference.logits)
                ),
            }
        )

    offered = overload_threads * submits_per_thread
    accepted_latencies = [r["latency_s"] for r in accepted]
    accepted_qps = len(accepted) / overload_seconds if overload_seconds else 0.0
    return {
        "schema": SCHEMA,
        "kind": "control_plane",
        "model": spec.name,
        "config": {
            "shards": shards,
            "max_batch": 1,
            "queue_budget": queue_budget,
            "calibration_queries": calibration_queries,
            "overload_threads": overload_threads,
            "submits_per_thread": submits_per_thread,
            "seed": seed,
        },
        "calibration": {
            "queries": calibration_queries,
            "queries_per_second": calibration_qps,
            "p50_latency_ms": 1e3 * float(np.percentile(calibration_latencies, 50)),
            "p95_latency_ms": 1e3 * float(np.percentile(calibration_latencies, 95)),
        },
        "overload": {
            "offered": offered,
            "accepted": len(accepted),
            "shed": len(shed),
            "client_failures": len(failures),
            "failure_messages": failures,
            "elapsed_seconds": overload_seconds,
            "accepted_qps": accepted_qps,
            "accepted_p50_ms": 1e3 * float(np.percentile(accepted_latencies, 50))
            if accepted_latencies
            else None,
            "accepted_p95_ms": 1e3 * float(np.percentile(accepted_latencies, 95))
            if accepted_latencies
            else None,
            "shed_ratio": len(shed) / offered if offered else 0.0,
            "qps_plateau_ratio": (
                accepted_qps / calibration_qps if calibration_qps else 0.0
            ),
            "mean_retry_after_ms": float(np.mean(shed)) if shed else None,
        },
        "counters": {
            "daemon": stats["daemon"],
            "admission": stats["admission"],
            "supervisor": {
                key: value
                for key, value in stats["supervisor"].items()
                if isinstance(value, (int, float))
            },
            "pool": {
                key: stats["pool"][key]
                for key in (
                    "jobs_executed",
                    "jobs_retried",
                    "jobs_recovered",
                    "shards_respawned",
                    "shards_retired",
                )
                if key in stats["pool"]
            },
        },
        "bit_identity": bit_identity,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg-tiny")
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--queries", type=int, default=48)
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--max-wait", type=float, default=0.03)
    parser.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated shard counts to sweep (e.g. 1,2,4)",
    )
    parser.add_argument(
        "--link-latency-ms", type=float, default=5.0,
        help="one-way inter-party latency injected per frame (0 = raw loopback)",
    )
    parser.add_argument(
        "--skip-zoo-check", action="store_true",
        help="skip the zoo-wide bit-identity phase (faster CI smoke)",
    )
    parser.add_argument(
        "--shaped-shards", default="1,2",
        help="shard counts swept under the shaped link (e.g. 1,2)",
    )
    parser.add_argument(
        "--shaped-latency-ms", type=float, default=20.0,
        help="one-way latency of the shaped-link regime",
    )
    parser.add_argument(
        "--shaped-jitter-ms", type=float, default=5.0,
        help="seeded uniform latency jitter of the shaped link",
    )
    parser.add_argument(
        "--shaped-bandwidth-mbps", type=float, default=200.0,
        help="bandwidth cap of the shaped link in megabits per second",
    )
    parser.add_argument(
        "--shaped-queries", type=int, default=24,
        help="queries run through the shaped-link regime",
    )
    parser.add_argument(
        "--skip-shaped", action="store_true",
        help="skip the shaped-link (WAN-like) regime",
    )
    parser.add_argument(
        "--overload", action="store_true",
        help="run the control-plane overload regime (serving daemon, "
        "admission control, backpressure) instead of the scaling sweep",
    )
    parser.add_argument(
        "--overload-shards", type=int, default=2,
        help="shard count of the daemon under overload (default 2)",
    )
    parser.add_argument(
        "--overload-threads", type=int, default=8,
        help="concurrent framed clients driving the overload phase",
    )
    parser.add_argument(
        "--overload-submits", type=int, default=6,
        help="submissions per overload client",
    )
    parser.add_argument(
        "--queue-budget", type=int, default=4,
        help="admission queue budget per (model, batch) under overload",
    )
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args()

    if args.overload:
        report = run_overload_benchmark(
            model=args.model,
            input_size=args.input_size,
            shards=args.overload_shards,
            overload_threads=args.overload_threads,
            submits_per_thread=args.overload_submits,
            queue_budget=args.queue_budget,
        )
        calibration = report["calibration"]
        overload = report["overload"]
        print(f"== control-plane overload: {report['model']}, "
              f"{report['config']['shards']} shards, queue budget "
              f"{report['config']['queue_budget']} ==")
        print(f"calibration: {calibration['queries_per_second']:.1f} qps "
              f"(p95 {calibration['p95_latency_ms']:.1f} ms)")
        print(f"overload:    offered {overload['offered']}, accepted "
              f"{overload['accepted']}, shed {overload['shed']} "
              f"(ratio {overload['shed_ratio']:.0%}), failures "
              f"{overload['client_failures']}")
        print(f"accepted qps {overload['accepted_qps']:.1f} "
              f"(plateau ratio {overload['qps_plateau_ratio']:.2f}x vs "
              f"calibration)")
        identical = [c["bit_identical"] for c in report["bit_identity"]]
        print(f"bit-identity: {sum(identical)}/{len(identical)} sampled "
              f"accepted jobs replay exactly")
        if overload["client_failures"]:
            for message in overload["failure_messages"]:
                print(f"  CLIENT FAILURE: {message}")
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
            print(f"wrote benchmark JSON to {args.json_path}")
        if overload["client_failures"] or not all(identical):
            raise SystemExit(
                "overload regime violated the control-plane contract"
            )
        return

    shard_counts = [int(part) for part in args.shards.split(",") if part]
    shaped_shard_counts = [
        int(part) for part in args.shaped_shards.split(",") if part
    ]

    report = run_benchmark(
        model=args.model,
        input_size=args.input_size,
        num_queries=args.queries,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        shard_counts=shard_counts,
        link_latency_ms=args.link_latency_ms,
        skip_zoo_check=args.skip_zoo_check,
        shaped_shard_counts=shaped_shard_counts,
        shaped_latency_ms=args.shaped_latency_ms,
        shaped_jitter_ms=args.shaped_jitter_ms,
        shaped_bandwidth_mbps=args.shaped_bandwidth_mbps,
        shaped_queries=args.shaped_queries,
        skip_shaped=args.skip_shaped,
    )

    print(f"== pool scaling: {report['model']}, {report['config']['num_queries']} "
          f"queries, max_batch {report['config']['max_batch']}, "
          f"link latency {report['config']['link_latency_ms']} ms ==")
    if report["zoo_bit_identity"] is not None:
        zoo = report["zoo_bit_identity"]
        print(f"zoo bit-identity: {len(zoo['checked'])} jobs across "
              f"{len(ZOO_MODELS)} models, all identical; "
              f"{zoo['processes_spawned']} processes spawned, "
              f"{zoo['per_request_process_spawns']:.0f} per request")
    print(f"{'path':<18} {'qps':>9} {'p50 ms':>9} {'p95 ms':>9} {'total s':>9}")
    for name, path in report["paths"].items():
        print(f"{name:<18} {path['queries_per_second']:>9.1f} "
              f"{path['p50_latency_ms']:>9.2f} {path['p95_latency_ms']:>9.2f} "
              f"{path['total_seconds']:>9.3f}")
    scaling = report["scaling"]
    print(f"aggregate qps scaling {scaling['from']} -> {scaling['to']}: "
          f"{scaling['qps_speedup']:.2f}x")
    shaped = report["shaped_scaling"]
    if shaped is not None:
        link = shaped["link"]
        print(f"shaped link ({link['latency_ms']:.0f} ms +/- "
              f"{link['jitter_ms']:.0f} ms, {link['bandwidth_mbps']:.0f} Mbps) "
              f"qps scaling {shaped['from']} -> {shaped['to']}: "
              f"{shaped['qps_speedup']:.2f}x")

    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote benchmark JSON to {args.json_path}")


if __name__ == "__main__":
    main()
