"""Supporting benchmark — ReLU vs X^2act under 2PC.

Two views of the introduction's claim that replacing ReLU with a
second-order polynomial activation yields a ~50x activation speedup:

1. the analytical latency model across feature-map sizes, and
2. the *executed* protocol simulation (communication bytes and wall-clock of
   the numpy 2PC simulation) on a small tensor.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.crypto import make_context, share
from repro.crypto.protocols import secure_relu, secure_x2act
from repro.evaluation.report import render_table
from repro.hardware.latency import DEFAULT_LATENCY_MODEL


def test_activation_speedup_latency_model(benchmark):
    shapes = [(8, 64), (16, 64), (32, 64), (56, 64), (56, 256)]

    def sweep():
        rows = []
        for fi, ic in shapes:
            relu = DEFAULT_LATENCY_MODEL.relu(fi, ic)
            x2act = DEFAULT_LATENCY_MODEL.x2act(fi, ic)
            rows.append(
                {
                    "feature map": f"{fi}x{fi}x{ic}",
                    "2PC-ReLU (ms)": relu.total_ms,
                    "2PC-X2act (ms)": x2act.total_ms,
                    "speedup": relu.total_s / x2act.total_s,
                }
            )
        return rows

    rows = benchmark(sweep)
    emit("Activation replacement speedup (latency model)", render_table(rows))
    # Small feature maps are dominated by the per-message base latency, so
    # the speedup grows with the map size; the intro's ~50x claim refers to
    # the large ImageNet-scale maps.
    assert all(row["speedup"] > 10 for row in rows)
    assert all(row["speedup"] > 50 for row in rows if row["feature map"].startswith("56"))


def test_activation_speedup_executed_protocols(benchmark):
    rng = np.random.default_rng(0)
    x = rng.uniform(-2, 2, size=(1, 8, 8, 8))

    def run_both():
        ctx_relu = make_context(seed=1)
        secure_relu(ctx_relu, share(x, ctx_relu.ring, rng))
        ctx_poly = make_context(seed=2)
        secure_x2act(ctx_poly, share(x, ctx_poly.ring, rng), w1=0.1, w2=1.0, b=0.0)
        return ctx_relu.communication_bytes, ctx_poly.communication_bytes

    relu_bytes, x2act_bytes = benchmark(run_both)
    emit(
        "Executed 2PC activation communication",
        render_table(
            [
                {"operator": "2PC-ReLU", "bytes": relu_bytes},
                {"operator": "2PC-X2act", "bytes": x2act_bytes},
                {"operator": "reduction", "bytes": relu_bytes / x2act_bytes},
            ]
        ),
    )
    # the packed sub-byte wire format + daBit B2A cut the old >10x gap to
    # ~6x — the comparison flow is still the dominant nonlinear cost
    assert relu_bytes > 4 * x2act_bytes
