"""Ablation — second-order vs first-order architecture gradient (DESIGN.md §4.2).

Algorithm 1 uses the second-order DARTS approximation (virtual weight step +
finite-difference Hessian-vector product).  This ablation runs the same
search with and without the second-order correction and compares wall-clock
cost per step and the resulting architecture.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.core.search import DifferentiablePolynomialSearch, SearchConfig
from repro.core.supernet import Supernet
from repro.data import DataLoader, synthetic_tiny, train_val_split
from repro.evaluation.report import render_table
from repro.models.vgg import vgg_tiny
from repro.utils import seed_everything


def _run(second_order: bool, num_steps: int = 5):
    seed_everything(3)
    dataset = synthetic_tiny(num_samples=64, image_size=8, seed=1, noise_std=0.25)
    train, val = train_val_split(dataset, 0.5, seed=0)
    supernet = Supernet(vgg_tiny(input_size=8))
    search = DifferentiablePolynomialSearch(
        supernet,
        DataLoader(train, batch_size=8, seed=1),
        DataLoader(val, batch_size=8, seed=2),
        SearchConfig(
            latency_lambda=1e-2, num_steps=num_steps, second_order=second_order, log_every=0
        ),
    )
    start = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - start
    return {
        "order": "second" if second_order else "first",
        "seconds/step": elapsed / num_steps,
        "poly fraction": result.polynomial_fraction,
        "expected latency (ms)": result.final_expected_latency_ms,
        "final val loss": result.history[-1].val_loss,
    }


def test_ablation_darts_second_vs_first_order(benchmark):
    def run_both():
        return [_run(second_order=True), _run(second_order=False)]

    rows = benchmark(run_both)
    emit("DARTS order ablation", render_table(rows))
    second, first = rows
    # The second-order update needs the extra forward/backward passes
    # (Algorithm 1 lines 6-13), so it must cost more per step.
    assert second["seconds/step"] > first["seconds/step"]
    # Both discover latency-reducing architectures under the same λ.
    assert second["poly fraction"] > 0
    assert first["poly fraction"] > 0
