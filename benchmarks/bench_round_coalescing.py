"""Round-coalescing benchmark: scheduled vs sequential plan execution.

Three phases, mirroring the acceptance criteria of the graph-plan IR work:

1. **static rounds** — for every zoo model, the legacy (sequential) online
   round count vs the scheduled (coalesced) count of the optimized plan,
   plus the reduction;
2. **zoo-wide bit-identity** — the scheduled in-process execution must match
   the unoptimized compiled path bit for bit for every zoo model (exits
   non-zero on divergence);
3. **qps under link latency** — the serving pool (persistent party-server
   pairs) at N shards, with round coalescing off (the PR-3 baseline
   behavior) vs on, under several simulated one-way link latencies.  The
   online phase is round-trip bound, so halving the frame count shows up
   directly in the WAN-regime throughput.

Run with:  PYTHONPATH=src python benchmarks/bench_round_coalescing.py
Optionally ``--json out.json`` writes the measurements (schema
``serving-bench/v1``, documented in docs/serving.md) for CI artifacts; CI
compares them against the committed baseline in
``benchmarks/baselines/round_coalescing_2shards.json`` via
``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List

import numpy as np

from repro.crypto import make_context, optimize_plan
from repro.crypto.plan import compile_plan
from repro.crypto.secure_model import SecureInferenceEngine
from repro.models import build_model, export_layer_weights, get_backbone
from repro.nn.tensor import Tensor
from repro.serve import ServableModel, ShardedServingPool
from repro.utils import seed_everything

#: zoo models covered by the static-rounds and bit-identity phases
ZOO_MODELS = ("vgg-tiny", "resnet-tiny", "mobilenetv2-tiny")

SCHEMA = "serving-bench/v1"


def _trained_servable(name: str, input_size: int, polynomial: bool) -> ServableModel:
    spec = get_backbone(name, input_size=input_size)
    if polynomial:
        spec = spec.with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):  # move BN running stats off their init values
        net(Tensor(rng.normal(size=(4, spec.in_channels, input_size, input_size))))
    net.eval()
    return ServableModel(spec, export_layer_weights(net))


def static_rounds_report(input_size: int) -> Dict[str, Dict[str, object]]:
    """Legacy vs scheduled online rounds for every zoo model (batch 1)."""
    report: Dict[str, Dict[str, object]] = {}
    for name in ZOO_MODELS:
        for polynomial in (False, True):
            spec = get_backbone(name, input_size=input_size)
            if polynomial:
                spec = spec.with_all_polynomial()
            plan = compile_plan(spec)
            splan = optimize_plan(plan)
            legacy = splan.legacy_online_rounds
            scheduled = splan.online_rounds
            variant = f"{spec.name}-poly" if polynomial else spec.name
            report[variant] = {
                "legacy_online_rounds": legacy,
                "scheduled_online_rounds": scheduled,
                "round_reduction": 1.0 - scheduled / legacy if legacy else 0.0,
                "online_bytes": splan.online_bytes,
                "num_ops": len(splan.ops),
                "schedule_rounds": splan.schedule.num_rounds,
            }
    return report


def verify_zoo_bit_identity(input_size: int, seed: int) -> List[Dict[str, object]]:
    """Scheduled execution == sequential compiled path, bit for bit, zoo-wide."""
    checked: List[Dict[str, object]] = []
    for name in ZOO_MODELS:
        for polynomial in (False, True):
            servable = _trained_servable(name, input_size, polynomial=polynomial)
            spec = servable.spec
            x = np.random.default_rng(100).normal(
                size=(2, spec.in_channels, input_size, input_size)
            )
            sequential = SecureInferenceEngine(make_context(seed=seed))
            plan = sequential.compile(spec, batch_size=2)
            reference = sequential.execute(
                plan, servable.weights, x, pool=sequential.preprocess(plan)
            )
            scheduled = SecureInferenceEngine(make_context(seed=seed))
            splan = scheduled.compile(spec, batch_size=2, optimize=True)
            result = scheduled.execute(
                splan, servable.weights, x, pool=scheduled.preprocess(splan)
            )
            identical = bool(np.array_equal(result.logits, reference.logits))
            checked.append(
                {
                    "model": spec.name,
                    "bit_identical": identical,
                    "legacy_rounds": reference.communication_rounds,
                    "scheduled_rounds": result.communication_rounds,
                }
            )
            if not identical:
                raise SystemExit(
                    f"scheduled execution of {spec.name} diverged from the "
                    "sequential compiled path"
                )
            if result.communication_bytes != reference.communication_bytes:
                raise SystemExit(
                    f"scheduled execution of {spec.name} changed the byte "
                    "volume — coalescing must only change round structure"
                )
    return checked


def measure_pool_qps(
    servable: ServableModel,
    model: str,
    queries: np.ndarray,
    batch: int,
    shards: int,
    link_latency_ms: float,
    coalesce_rounds: bool,
    seed: int,
) -> Dict[str, object]:
    """qps of the serving pool for one (latency, mode) configuration."""
    models = {model: servable}
    num_queries = queries.shape[0]
    job_latencies: List[float] = []
    with ShardedServingPool(
        models,
        num_shards=shards,
        max_batch=batch,
        provision_pools=max(num_queries // batch // shards + 1, 1),
        warm_batch_sizes=(batch,),
        link_latency=link_latency_ms / 1e3,
        seed=seed,
        coalesce_rounds=coalesce_rounds,
    ) as pool:
        start = time.perf_counter()
        payload_bytes = 0
        rounds_logged = None
        for lo in range(0, num_queries, batch):
            t0 = time.perf_counter()
            result = pool.run_batch(model, queries[lo : lo + batch])
            job_latencies.append(time.perf_counter() - t0)
            payload_bytes += result.payload_bytes_on_wire
        total = time.perf_counter() - start
        snapshot = pool.stats_snapshot()
        rounds_logged = snapshot["jobs_executed"]
    return {
        "queries_per_second": num_queries / total,
        "p50_latency_ms": 1e3 * float(np.percentile(job_latencies, 50)),
        "p95_latency_ms": 1e3 * float(np.percentile(job_latencies, 95)),
        "total_seconds": total,
        "jobs_executed": rounds_logged,
        "payload_bytes_on_wire": payload_bytes,
        "num_shards": shards,
        "link_latency_ms": link_latency_ms,
        "coalesce_rounds": coalesce_rounds,
    }


def run_benchmark(
    model: str = "vgg-tiny",
    input_size: int = 8,
    num_queries: int = 8,
    batch: int = 4,
    shards: int = 2,
    latencies_ms: List[float] = (0.0, 5.0, 20.0),
    seed: int = 0,
    skip_zoo_check: bool = False,
) -> dict:
    seed_everything(1)
    rounds = static_rounds_report(input_size)
    zoo_check = None if skip_zoo_check else verify_zoo_bit_identity(input_size, seed)

    servable = _trained_servable(model, input_size, polynomial=False)
    spec = servable.spec
    queries = np.random.default_rng(3).normal(
        size=(num_queries, spec.in_channels, input_size, input_size)
    )

    paths: Dict[str, Dict[str, object]] = {}
    qps_improvement: Dict[str, float] = {}
    for latency in latencies_ms:
        for coalesce in (False, True):
            mode = "coalesced" if coalesce else "sequential"
            key = f"latency-{latency:g}ms-{mode}"
            paths[key] = measure_pool_qps(
                servable,
                model,
                queries,
                batch=batch,
                shards=shards,
                link_latency_ms=latency,
                coalesce_rounds=coalesce,
                seed=seed,
            )
        baseline = paths[f"latency-{latency:g}ms-sequential"]["queries_per_second"]
        coalesced = paths[f"latency-{latency:g}ms-coalesced"]["queries_per_second"]
        qps_improvement[f"{latency:g}ms"] = coalesced / baseline if baseline else 0.0

    best_reduction = max(entry["round_reduction"] for entry in rounds.values())
    return {
        "schema": SCHEMA,
        "kind": "round_coalescing",
        "model": spec.name,
        "batch_size": batch,
        "config": {
            "num_queries": num_queries,
            "batch": batch,
            "shards": shards,
            "latencies_ms": list(latencies_ms),
            "input_size": input_size,
            "seed": seed,
        },
        "rounds": rounds,
        "best_round_reduction": best_reduction,
        "zoo_bit_identity": zoo_check,
        "paths": paths,
        "qps_improvement": qps_improvement,
        "workers": [],
    }


def print_report(report: dict) -> None:
    print("== static online rounds (batch 1) ==")
    print(f"{'model':<28} {'legacy':>8} {'scheduled':>10} {'reduction':>10}")
    for name, entry in report["rounds"].items():
        print(
            f"{name:<28} {entry['legacy_online_rounds']:>8} "
            f"{entry['scheduled_online_rounds']:>10} "
            f"{100 * entry['round_reduction']:>9.1f}%"
        )
    if report["zoo_bit_identity"] is not None:
        identical = sum(1 for c in report["zoo_bit_identity"] if c["bit_identical"])
        print(
            f"\nzoo bit-identity: {identical}/{len(report['zoo_bit_identity'])} "
            "scheduled executions identical to the sequential path"
        )
    print(f"\n== pool qps ({report['config']['shards']} shards, "
          f"model {report['model']}) ==")
    print(f"{'path':<30} {'qps':>8} {'p50 ms':>9} {'p95 ms':>9} {'total s':>9}")
    for name, path in report["paths"].items():
        print(
            f"{name:<30} {path['queries_per_second']:>8.2f} "
            f"{path['p50_latency_ms']:>9.1f} {path['p95_latency_ms']:>9.1f} "
            f"{path['total_seconds']:>9.2f}"
        )
    for latency, ratio in report["qps_improvement"].items():
        print(f"qps improvement at {latency}: {ratio:.2f}x")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg-tiny", help="zoo backbone for the qps phase")
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--latencies", default="0,5,20",
        help="comma-separated one-way link latencies in ms",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-zoo-check", action="store_true")
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args()

    report = run_benchmark(
        model=args.model,
        input_size=args.input_size,
        num_queries=args.queries,
        batch=args.batch,
        shards=args.shards,
        latencies_ms=[float(v) for v in args.latencies.split(",") if v],
        seed=args.seed,
        skip_zoo_check=args.skip_zoo_check,
    )
    print_report(report)

    # write the artifact before the acceptance gate: a failing run is
    # exactly the one whose per-model rounds data must survive for triage
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote measurements to {args.json_path}")

    # The log-depth comparison tree collapsed the *sequential* round count
    # ~4x (every tree level is already one stacked event), so cross-event
    # coalescing has less intra-op redundancy left to exploit than at the
    # original 25% floor; the absolute round budget is gated separately by
    # benchmarks/bench_wire_compression.py (vgg-tiny <= 294 scheduled).
    if report["best_round_reduction"] < 0.10:
        raise SystemExit(
            f"best round reduction {report['best_round_reduction']:.1%} is "
            "below the 10% acceptance floor"
        )


if __name__ == "__main__":
    main()
