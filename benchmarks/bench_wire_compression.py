"""Wire-compression benchmark: log-depth comparison tree + packed payloads.

Measures and *verifies* the two halves of the nonlinear-protocol rework:

1. **static table** — for every zoo model (ReLU and all-polynomial form):
   scheduled online rounds of the optimized plan, packed online payload
   bytes, the frame-format-v1 (unpacked) equivalent, and the compression
   ratio of the comparison-based (nonlinear) layers alone;
2. **verification** — zoo-wide, the scheduled execution must be
   bit-identical to the sequential compiled path AND both must log exactly
   the manifest's packed byte prediction (exits non-zero on divergence);
   the acceptance gates — nonlinear-layer payload >= 4x smaller than
   unpacked and vgg-tiny scheduled rounds <= a third of the pre-tree
   baseline of 884 — are asserted here;
3. **socket phase** (skippable) — one two-OS-process execution over
   localhost TCP asserting payload == manifest at packed widths on a real
   wire, and reporting the measured ``bytes_saved_pct``.

Run with:  PYTHONPATH=src python benchmarks/bench_wire_compression.py
Optionally ``--json out.json`` writes the measurements (schema
``wire-bench/v1``) for CI artifacts; CI compares them against the committed
baseline in ``benchmarks/baselines/wire_compression.json`` via
``tools/check_bench_regression.py`` (payload bytes and scheduled rounds are
compile-time deterministic, so any increase fails the job exactly).
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List

import numpy as np

from repro.crypto import make_context, optimize_plan
from repro.crypto.plan import compile_plan
from repro.crypto.protocols.comparison import drelu_trace
from repro.crypto.protocols.registry import get_handler
from repro.crypto.secure_model import SecureInferenceEngine
from repro.crypto.sharing import share
from repro.models import build_model, export_layer_weights, get_backbone
from repro.models.specs import LayerKind
from repro.nn.tensor import Tensor
from repro.utils import seed_everything

ZOO_MODELS = ("vgg-tiny", "resnet-tiny", "mobilenetv2-tiny")

#: layer kinds whose protocols ride the comparison flow (the "nonlinear"
#: payload of the acceptance criterion)
NONLINEAR_KINDS = (LayerKind.RELU, LayerKind.MAXPOOL)

SCHEMA = "wire-bench/v1"

#: the PR-4 scheduled-rounds baseline the tree must beat 3x (vgg-tiny, b1)
PRE_TREE_VGG_ROUNDS = 884


def _trained_weights(spec):
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):  # move BN running stats off their init values
        net(Tensor(rng.normal(size=(4, spec.in_channels, spec.input_size, spec.input_size))))
    net.eval()
    return export_layer_weights(net)


def _per_layer_packed_and_unpacked(spec, weights, seed: int):
    """Sequential per-op execution reading both byte counters per layer."""
    ctx = make_context(seed=seed)
    plan = compile_plan(spec, batch_size=1, ring=ctx.ring)
    pool = ctx.dealer.preprocess(plan)
    dealer = ctx.dealer
    ctx.dealer = pool
    packed: Dict[str, int] = {}
    unpacked: Dict[str, int] = {}
    try:
        ctx.reset_communication()
        x = np.random.default_rng(7).normal(
            size=(1, spec.in_channels, spec.input_size, spec.input_size)
        )
        shared = share(x, ctx.ring, ctx.rng)
        cache = {}
        for op in plan.ops:
            bytes_before = ctx.channel.log.total_bytes
            raw_before = ctx.channel.log.total_unpacked_bytes
            handler = get_handler(op.kind)
            shared = handler.execute(ctx, op.layer, weights.get(op.name, {}), shared, cache)
            cache[op.name] = shared
            packed[op.name] = ctx.channel.log.total_bytes - bytes_before
            unpacked[op.name] = ctx.channel.log.total_unpacked_bytes - raw_before
    finally:
        ctx.dealer = dealer
    return plan, packed, unpacked


def static_table(input_size: int, seed: int) -> Dict[str, Dict[str, object]]:
    """Rounds and packed/unpacked payload per zoo model (batch 1)."""
    table: Dict[str, Dict[str, object]] = {}
    for name in ZOO_MODELS:
        for polynomial in (False, True):
            spec = get_backbone(name, input_size=input_size)
            if polynomial:
                spec = spec.with_all_polynomial()
            weights = _trained_weights(spec)
            plan, packed, unpacked = _per_layer_packed_and_unpacked(spec, weights, seed)
            splan = optimize_plan(plan)
            nonlinear = {
                op.name for op in plan.ops if op.kind in NONLINEAR_KINDS
            }
            nl_packed = sum(packed[n] for n in nonlinear)
            nl_unpacked = sum(unpacked[n] for n in nonlinear)
            total_packed = sum(packed.values())
            total_unpacked = sum(unpacked.values())
            variant = f"{spec.name}-poly" if polynomial else spec.name
            table[variant] = {
                "scheduled_online_rounds": splan.online_rounds,
                "legacy_online_rounds": splan.legacy_online_rounds,
                "online_bytes": splan.online_bytes,
                "unpacked_online_bytes": total_unpacked,
                "bytes_saved_pct": 100.0 * (1.0 - total_packed / total_unpacked)
                if total_unpacked
                else 0.0,
                "nonlinear_payload_bytes": nl_packed,
                "nonlinear_unpacked_bytes": nl_unpacked,
                "nonlinear_compression": nl_unpacked / nl_packed if nl_packed else 0.0,
                "num_ops": len(splan.ops),
            }
            # the per-op sequential log must equal the plan prediction exactly
            if total_packed != plan.online_bytes:
                raise SystemExit(
                    f"{variant}: executed packed bytes {total_packed} != "
                    f"manifest prediction {plan.online_bytes}"
                )
    return table


def verify_zoo(input_size: int, seed: int) -> List[Dict[str, object]]:
    """Bit-identity + payload==manifest, zoo-wide, at packed widths."""
    checked: List[Dict[str, object]] = []
    for name in ZOO_MODELS:
        for polynomial in (False, True):
            spec = get_backbone(name, input_size=input_size)
            if polynomial:
                spec = spec.with_all_polynomial()
            weights = _trained_weights(spec)
            x = np.random.default_rng(100).normal(
                size=(2, spec.in_channels, input_size, input_size)
            )
            sequential = SecureInferenceEngine(make_context(seed=seed))
            plan = sequential.compile(spec, batch_size=2)
            reference = sequential.execute(
                plan, weights, x, pool=sequential.preprocess(plan)
            )
            scheduled = SecureInferenceEngine(make_context(seed=seed))
            splan = scheduled.compile(spec, batch_size=2, optimize=True)
            result = scheduled.execute(
                splan, weights, x, pool=scheduled.preprocess(splan)
            )
            identical = bool(np.array_equal(result.logits, reference.logits))
            exact = (
                reference.communication_bytes == plan.online_bytes
                and result.communication_bytes == splan.online_bytes
            )
            checked.append(
                {
                    "model": spec.name,
                    "bit_identical": identical,
                    "payload_matches_manifest": exact,
                    "bytes_saved_pct": result.bytes_saved_pct,
                }
            )
            if not identical:
                raise SystemExit(
                    f"scheduled execution of {spec.name} diverged from the "
                    "sequential compiled path"
                )
            if not exact:
                raise SystemExit(
                    f"{spec.name}: logged payload does not equal the packed "
                    "manifest prediction"
                )
    return checked


def socket_phase(input_size: int, seed: int) -> Dict[str, object]:
    """One real two-process TCP session: packed payload == manifest on-wire."""
    from repro.runtime import run_two_process_inference

    spec = get_backbone("vgg-tiny", input_size=input_size)
    weights = _trained_weights(spec)
    queries = np.random.default_rng(7).normal(
        size=(2, spec.in_channels, input_size, input_size)
    )
    result = run_two_process_inference(spec, weights, queries, seed=seed)
    if not result.matches_manifest:
        raise SystemExit(
            "socket phase: on-wire payload does not equal the packed manifest"
        )
    return {
        "model": spec.name,
        "payload_bytes_on_wire": result.payload_bytes_on_wire,
        "unpacked_payload_bytes": result.unpacked_payload_bytes,
        "bytes_saved_pct": result.bytes_saved_pct,
        "online_rounds": result.online_rounds,
        "matches_manifest": result.matches_manifest,
    }


def run_benchmark(
    input_size: int = 8, seed: int = 0, skip_socket: bool = False
) -> dict:
    seed_everything(1)
    table = static_table(input_size, seed)
    zoo_check = verify_zoo(input_size, seed)
    socket = None if skip_socket else socket_phase(input_size, seed)

    ring = make_context().ring
    rounds_per_drelu = drelu_trace((1,), ring).scheduled_rounds
    vgg_rounds = table[f"vgg_tiny-{input_size}"]["scheduled_online_rounds"]
    worst_nonlinear = min(
        entry["nonlinear_compression"]
        for name, entry in table.items()
        if not name.endswith("-poly")
    )
    return {
        "schema": SCHEMA,
        "kind": "wire_compression",
        "config": {"input_size": input_size, "seed": seed},
        "models": table,
        "zoo_verification": zoo_check,
        "socket": socket,
        "rounds_per_drelu": rounds_per_drelu,
        "vgg_scheduled_rounds": vgg_rounds,
        "pre_tree_vgg_rounds": PRE_TREE_VGG_ROUNDS,
        "worst_nonlinear_compression": worst_nonlinear,
    }


def print_report(report: dict) -> None:
    print("== packed wire format: payload and rounds (batch 1) ==")
    print(
        f"{'model':<24} {'rounds':>7} {'payload':>10} {'unpacked':>10} "
        f"{'saved':>7} {'nl-ratio':>9}"
    )
    for name, entry in report["models"].items():
        print(
            f"{name:<24} {entry['scheduled_online_rounds']:>7} "
            f"{entry['online_bytes']:>10} {entry['unpacked_online_bytes']:>10} "
            f"{entry['bytes_saved_pct']:>6.1f}% "
            f"{entry['nonlinear_compression']:>8.2f}x"
        )
    identical = sum(1 for c in report["zoo_verification"] if c["bit_identical"])
    print(
        f"\nzoo verification: {identical}/{len(report['zoo_verification'])} "
        "bit-identical, payload == packed manifest everywhere"
    )
    print(
        f"rounds per DReLU: {report['rounds_per_drelu']} "
        f"(log-depth tree); vgg-tiny scheduled rounds "
        f"{report['vgg_scheduled_rounds']} vs pre-tree {report['pre_tree_vgg_rounds']}"
    )
    if report["socket"] is not None:
        sock = report["socket"]
        print(
            f"socket phase ({sock['model']}): {sock['payload_bytes_on_wire']} "
            f"payload bytes on the wire, {sock['bytes_saved_pct']:.1f}% saved, "
            f"manifest exact: {sock['matches_manifest']}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-socket", action="store_true")
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args()

    report = run_benchmark(
        input_size=args.input_size, seed=args.seed, skip_socket=args.skip_socket
    )
    print_report(report)

    # write the artifact before the acceptance gates: a failing run is
    # exactly the one whose measurements must survive for triage
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote measurements to {args.json_path}")

    if report["vgg_scheduled_rounds"] > PRE_TREE_VGG_ROUNDS // 3:
        raise SystemExit(
            f"vgg-tiny scheduled rounds {report['vgg_scheduled_rounds']} "
            f"exceed a third of the pre-tree baseline "
            f"({PRE_TREE_VGG_ROUNDS} -> floor {PRE_TREE_VGG_ROUNDS // 3})"
        )
    if report["worst_nonlinear_compression"] < 4.0:
        raise SystemExit(
            f"nonlinear-layer payload compression "
            f"{report['worst_nonlinear_compression']:.2f}x is below the 4x "
            "acceptance floor"
        )


if __name__ == "__main__":
    main()
