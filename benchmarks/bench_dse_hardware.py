"""Design-space exploration — the "algorithm <-> hardware" closed loop.

Sweeps the server-to-server bandwidth and the comparison-engine parallelism
for VGG-16 / CIFAR-10 and reports how the all-ReLU latency, the all-poly
latency and the searched architecture shift — the co-design argument of the
paper's introduction (a fixed architecture is sub-optimal across hardware
operating points).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.evaluation.report import render_table
from repro.hardware.dse import explore_device_parallelism, explore_network_bandwidth
from repro.models.vgg import vgg16_cifar


def test_dse_bandwidth_and_parallelism(benchmark):
    spec = vgg16_cifar()

    def run():
        return (
            explore_network_bandwidth(spec, bandwidths_gbps=(0.1, 1.0, 10.0)),
            explore_device_parallelism(spec, comparison_lanes=(10, 40, 160)),
        )

    bandwidth_points, lane_points = benchmark(run)

    def rows(points):
        return [
            {
                "config": p.label,
                "all-ReLU (ms)": p.all_relu_ms,
                "all-poly (ms)": p.all_poly_ms,
                "searched (ms)": p.searched_ms,
                "searched poly %": 100 * p.searched_poly_fraction,
            }
            for p in points
        ]

    emit("DSE: network bandwidth sweep (VGG-16 / CIFAR-10)", render_table(rows(bandwidth_points)))
    emit("DSE: comparison-engine parallelism sweep", render_table(rows(lane_points)))

    # Faster links shrink the all-ReLU latency but the polynomial model keeps
    # a large advantage at every operating point.
    assert all(p.poly_speedup > 5 for p in bandwidth_points)
    relu_latencies = [p.all_relu_ms for p in bandwidth_points]
    assert relu_latencies == sorted(relu_latencies, reverse=True)
    # Scaling only the comparison engine leaves the all-polynomial latency
    # untouched (it contains no comparison flows).
    assert len({round(p.all_poly_ms, 6) for p in lane_points}) == 1
    # On the slowest link the searched architecture is at least as polynomial
    # as on the fastest link.
    assert bandwidth_points[0].searched_poly_fraction >= bandwidth_points[-1].searched_poly_fraction
