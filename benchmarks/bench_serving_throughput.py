"""Serving throughput: batched frontend vs. sequential per-query execution.

Measures the amortization the batching frontend buys on the online phase:
``N`` queries served one by one (each its own batch-1 plan execution with a
pre-provisioned pool — the fair sequential baseline) against the same ``N``
queries pushed through a :class:`repro.serve.BatchingFrontend` that
coalesces them up to ``max_batch``.  Reports queries/sec and p50/p95
latency for both paths.

Run with:  PYTHONPATH=src python benchmarks/bench_serving_throughput.py
Optionally ``--json out.json`` writes the numbers for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.crypto import make_context
from repro.crypto.secure_model import SecureInferenceEngine
from repro.models import build_model, export_layer_weights, get_backbone
from repro.nn.tensor import Tensor
from repro.serve import BatchingFrontend, ServableModel
from repro.utils import seed_everything


def _percentiles_ms(latencies):
    return (
        1e3 * float(np.percentile(latencies, 50)),
        1e3 * float(np.percentile(latencies, 95)),
    )


def run_benchmark(
    model: str = "vgg-tiny",
    input_size: int = 8,
    num_queries: int = 32,
    max_batch: int = 8,
    max_wait: float = 0.02,
    seed: int = 0,
) -> dict:
    seed_everything(1)
    spec = get_backbone(model, input_size=input_size).with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):
        net(Tensor(rng.normal(size=(4, spec.in_channels, input_size, input_size))))
    net.eval()
    weights = export_layer_weights(net)
    queries = np.random.default_rng(3).normal(
        size=(num_queries, spec.in_channels, input_size, input_size)
    )

    # -- sequential baseline: one batch-1 execution per query --------------- #
    engine = SecureInferenceEngine(make_context(seed=seed))
    plan1 = engine.compile(spec, batch_size=1)
    pools = [engine.preprocess(plan1) for _ in range(num_queries)]  # offline
    latencies = []
    seq_start = time.perf_counter()
    for i in range(num_queries):
        t0 = time.perf_counter()
        engine.execute(plan1, weights, queries[i : i + 1], pool=pools[i])
        latencies.append(time.perf_counter() - t0)
    seq_seconds = time.perf_counter() - seq_start
    seq_p50, seq_p95 = _percentiles_ms(latencies)

    # -- batched frontend --------------------------------------------------- #
    frontend = BatchingFrontend(
        {model: ServableModel(spec, weights)},
        max_batch=max_batch,
        max_wait=max_wait,
        provision_pools=max(num_queries // max_batch + 1, 1),
        seed=seed,
    )
    with frontend:
        batch_start = time.perf_counter()
        futures = frontend.submit_many(model, queries)
        for future in futures:
            future.result(timeout=300)
        batch_seconds = time.perf_counter() - batch_start
    stats = frontend.stats.snapshot()
    cache = frontend.cache.stats.snapshot()

    sequential = {
        "queries_per_second": num_queries / seq_seconds,
        "p50_latency_ms": seq_p50,
        "p95_latency_ms": seq_p95,
        "total_seconds": seq_seconds,
    }
    batched = {
        "queries_per_second": num_queries / batch_seconds,
        "p50_latency_ms": stats["p50_latency_ms"],
        "p95_latency_ms": stats["p95_latency_ms"],
        "total_seconds": batch_seconds,
        "mean_batch_size": stats["mean_batch_size"],
        "batches_dispatched": stats["batches_dispatched"],
        "cold_pool_misses": cache["cold_pool_misses"],
    }
    return {
        # ``serving-bench/v1`` shared schema (docs/serving.md); the bare
        # "sequential"/"batched" keys are kept for older consumers.
        "schema": "serving-bench/v1",
        "kind": "serving_throughput",
        "model": spec.name,
        "config": {
            "num_queries": num_queries,
            "max_batch": max_batch,
            "max_wait_s": max_wait,
            "seed": seed,
        },
        "paths": {"sequential": sequential, "batched-1worker": batched},
        "workers": [],  # in-process backend: no party workers
        "num_queries": num_queries,
        "max_batch": max_batch,
        "max_wait_s": max_wait,
        "sequential": sequential,
        "batched": batched,
        "throughput_speedup": seq_seconds / batch_seconds,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg-tiny")
    parser.add_argument("--input-size", type=int, default=8)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait", type=float, default=0.02)
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args()

    report = run_benchmark(
        model=args.model,
        input_size=args.input_size,
        num_queries=args.queries,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
    )

    seq = report["sequential"]
    bat = report["batched"]
    print(f"== serving throughput: {report['model']}, "
          f"{report['num_queries']} queries, max_batch {report['max_batch']} ==")
    print(f"{'path':<12} {'qps':>9} {'p50 ms':>9} {'p95 ms':>9} {'total s':>9}")
    print(f"{'sequential':<12} {seq['queries_per_second']:>9.1f} "
          f"{seq['p50_latency_ms']:>9.2f} {seq['p95_latency_ms']:>9.2f} "
          f"{seq['total_seconds']:>9.3f}")
    print(f"{'batched':<12} {bat['queries_per_second']:>9.1f} "
          f"{bat['p50_latency_ms']:>9.2f} {bat['p95_latency_ms']:>9.2f} "
          f"{bat['total_seconds']:>9.3f}")
    print(f"throughput speedup: {report['throughput_speedup']:.2f}x "
          f"(mean batch {bat['mean_batch_size']:.1f}, "
          f"{bat['batches_dispatched']} dispatches, "
          f"{bat['cold_pool_misses']} cold pool misses)")

    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote benchmark JSON to {args.json_path}")


if __name__ == "__main__":
    main()
