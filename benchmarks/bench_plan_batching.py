"""Benchmark: batched plan execution vs sequential legacy-style runs.

Acceptance benchmark of the plan-runtime PR: running 8 client queries
through one compiled plan (offline preprocessing amortized, protocol calls
vectorized over the batch) must perform **zero** dealer generation calls in
the online phase and be measurably faster per query than 8 sequential
interpretive runs.  Offline and online costs are reported separately, which
is the deployment-relevant split (Fig. 3): the offline phase can run ahead
of time, the online phase is what the client waits for.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit
from repro.crypto import make_context
from repro.crypto.secure_model import SecureInferenceEngine
from repro.evaluation.report import render_table
from repro.models import build_model, export_layer_weights
from repro.models.vgg import vgg_tiny
from repro.nn.tensor import Tensor

BATCH = 8


def _setup():
    spec = vgg_tiny(input_size=8).with_all_polynomial()
    net = build_model(spec)
    rng = np.random.default_rng(0)
    for _ in range(2):
        net(Tensor(rng.normal(size=(4, 3, 8, 8))))
    net.eval()
    weights = export_layer_weights(net)
    queries = rng.normal(size=(BATCH, 3, 8, 8))
    return spec, weights, queries


def test_batched_online_phase_beats_sequential_runs():
    spec, weights, queries = _setup()

    # -- sequential: 8 independent interpretive runs (lazy dealer) -------- #
    start = time.perf_counter()
    sequential_logits = []
    sequential_bytes = 0
    for i in range(BATCH):
        engine = SecureInferenceEngine(make_context(seed=100 + i))
        result = engine.run(spec, weights, queries[i : i + 1])
        sequential_logits.append(result.logits[0])
        sequential_bytes += result.communication_bytes
    sequential_s = time.perf_counter() - start

    # -- compiled: offline once, one batched online pass ------------------ #
    engine = SecureInferenceEngine(make_context(seed=7))
    start = time.perf_counter()
    plan = engine.compile(spec, batch_size=BATCH)
    pool = engine.preprocess(plan)
    offline_s = time.perf_counter() - start

    dealer = engine.ctx.dealer
    generated_before = (dealer.triples_generated, dealer.bit_triples_generated)
    start = time.perf_counter()
    batched = engine.execute(plan, weights, queries, pool=pool)
    online_s = time.perf_counter() - start
    generated_after = (dealer.triples_generated, dealer.bit_triples_generated)

    emit(
        "Batched plan execution vs sequential legacy runs "
        f"({spec.name}, {BATCH} queries)",
        render_table(
            [
                {
                    "mode": "sequential x8 (lazy dealer)",
                    "offline (ms)": "-",
                    "online (ms)": round(1e3 * sequential_s, 1),
                    "per query (ms)": round(1e3 * sequential_s / BATCH, 2),
                    "online kB": round(sequential_bytes / 1e3, 1),
                },
                {
                    "mode": "compiled plan, batch=8",
                    "offline (ms)": round(1e3 * offline_s, 1),
                    "online (ms)": round(1e3 * online_s, 1),
                    "per query (ms)": round(1e3 * online_s / BATCH, 2),
                    "online kB": round(batched.communication_bytes / 1e3, 1),
                },
            ]
        )
        + f"\noffline randomness material: {batched.offline_material_bytes / 1e3:.1f} kB"
        f"\nspeedup per query (online): {sequential_s / online_s:.2f}x",
    )

    # Zero dealer generation calls during the online phase.
    assert generated_after == generated_before
    # Predictions agree with the sequential runs.
    np.testing.assert_array_equal(
        batched.logits.argmax(axis=1), np.stack(sequential_logits).argmax(axis=1)
    )
    # Measurably faster per query: one batched pass beats 8 sequential runs.
    assert online_s < sequential_s, (
        f"batched online phase ({online_s:.3f}s) should beat "
        f"{BATCH} sequential runs ({sequential_s:.3f}s)"
    )
    # The batched online bytes equal the sequential total (same protocol
    # work, just vectorized), so the per-query communication is unchanged.
    assert batched.communication_bytes == sequential_bytes
