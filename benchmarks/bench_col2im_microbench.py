"""Microbenchmark of the vectorized ``_col2im`` scatter and conv backward.

PR "plan-based runtime" satellite: the ``for i in range(kh): for j in
range(kw)`` accumulation loop in :func:`repro.nn.functional._col2im` was the
hot path of convolution/pooling backward.  Two optimizations landed:

- non-overlapping windows (stride >= kernel, i.e. every pooling backward)
  collapse to a single transposed strided assignment — no loop at all;
- conv backward computes ``grad_cols`` with one batched matmul in the layout
  ``_col2im`` consumes instead of a 7-axis einsum with a large intermediate.

This benchmark times the old implementations against the shipped ones on
backbone-representative shapes and asserts the speedup.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple

import numpy as np

from benchmarks.conftest import emit
from repro.evaluation.report import render_table
from repro.nn.functional import (
    _col2im,
    conv2d,
    conv_workspace_stats,
    reset_conv_workspace,
)
from repro.nn.tensor import Tensor


def _col2im_loop_reference(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
) -> np.ndarray:
    """The seed implementation: one strided accumulation per kernel offset."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    out = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += cols[:, :, i, j]
    return out


def _best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_nonoverlapping_col2im_speedup():
    """Pooling backward (kernel == stride) runs loop-free and faster."""
    rng = np.random.default_rng(0)
    rows = []
    ratios = []
    for name, x_shape, kernel, stride in [
        ("pool2x2-32px-64ch", (8, 64, 32, 32), (2, 2), (2, 2)),
        ("pool2x2-16px-128ch", (8, 128, 16, 16), (2, 2), (2, 2)),
    ]:
        kh, kw = kernel
        sh, sw = stride
        n, c, h, w = x_shape
        oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
        cols = rng.normal(size=(n, c, kh, kw, oh, ow))
        np.testing.assert_allclose(
            _col2im(cols, x_shape, kernel, stride),
            _col2im_loop_reference(cols, x_shape, kernel, stride),
        )
        t_old = _best_of(lambda: _col2im_loop_reference(cols, x_shape, kernel, stride))
        t_new = _best_of(lambda: _col2im(cols, x_shape, kernel, stride))
        ratios.append(t_old / t_new)
        rows.append(
            {
                "case": name,
                "loop (ms)": round(1e3 * t_old, 3),
                "vectorized (ms)": round(1e3 * t_new, 3),
                "speedup": round(t_old / t_new, 2),
            }
        )
    emit("col2im non-overlapping fast path", render_table(rows))
    assert max(ratios) > 1.05, f"expected a speedup, got ratios {ratios}"


def test_conv_backward_speedup():
    """The fused-matmul grad path beats the seed's einsum + scatter."""
    rng = np.random.default_rng(1)
    rows = []
    ratios = []
    for name, x_shape, w_shape, stride, padding, groups in [
        ("conv3x3-32px-64ch", (8, 64, 32, 32), (64, 64, 3, 3), 1, 1, 1),
        ("conv3x3-s2-32px", (8, 64, 32, 32), (128, 64, 3, 3), 2, 1, 1),
        ("dwconv3x3-16px-96ch", (8, 96, 16, 16), (96, 1, 3, 3), 1, 1, 96),
    ]:
        n, ic, h, w = x_shape
        oc, icg, kh, kw = w_shape
        ph = pw = padding
        x_pad_shape = (n, ic, h + 2 * ph, w + 2 * pw)
        oh = (x_pad_shape[2] - kh) // stride + 1
        ow = (x_pad_shape[3] - kw) // stride + 1
        weight = rng.normal(size=w_shape) * 0.1
        grad = rng.normal(size=(n, oc, oh, ow))
        grad_g = grad.reshape(n, groups, oc // groups, oh, ow)
        w_g = weight.reshape(groups, oc // groups, icg, kh, kw)

        # Seed implementation: 7-axis einsum into a big intermediate, then
        # the loop scatter.
        def legacy_grad_x():
            grad_cols = np.einsum("gocij,ngoyx->ngcijyx", w_g, grad_g, optimize=True)
            grad_cols = grad_cols.reshape(n, ic, kh, kw, oh, ow)
            return _col2im_loop_reference(
                grad_cols, x_pad_shape, (kh, kw), (stride, stride)
            )

        # Shipped implementation (mirrors repro.nn.functional.conv2d backward):
        # one batched matmul straight into col2im layout.
        def fused_grad_x():
            ocg = oc // groups
            wmat = w_g.transpose(0, 3, 4, 2, 1).reshape(groups, kh * kw * icg, ocg)
            gmat = grad_g.reshape(n, groups, ocg, oh * ow)
            grad_cols = np.matmul(wmat[None], gmat)
            grad_cols = (
                grad_cols.reshape(n, groups, kh, kw, icg, oh, ow)
                .transpose(0, 1, 4, 2, 3, 5, 6)
                .reshape(n, ic, kh, kw, oh, ow)
            )
            return _col2im(grad_cols, x_pad_shape, (kh, kw), (stride, stride))

        np.testing.assert_allclose(legacy_grad_x(), fused_grad_x(), atol=1e-10)
        t_old = _best_of(legacy_grad_x)
        t_new = _best_of(fused_grad_x)
        ratios.append(t_old / t_new)
        rows.append(
            {
                "case": name,
                "einsum+loop (ms)": round(1e3 * t_old, 3),
                "fused matmul (ms)": round(1e3 * t_new, 3),
                "speedup": round(t_old / t_new, 2),
            }
        )
    emit("conv backward grad_x path", render_table(rows))
    assert max(ratios) > 1.05, f"expected a speedup, got ratios {ratios}"


def test_inference_conv_workspace_zero_extra_allocations():
    """Steady-state inference convs reuse one padded buffer, never realloc.

    PR "fused local-compute lowering" satellite: ``conv2d`` used to rebuild
    the padded im2col source with ``np.pad`` on *every* call.  On the
    inference path (nothing requires grad) the pad now lands in a thread-
    local workspace; after the first call on a shape, repeat calls must be
    allocation-free — ``misses`` counts buffer allocations, and it may only
    move when the shape changes.
    """
    rng = np.random.default_rng(2)
    x = Tensor(rng.normal(size=(8, 64, 32, 32)))
    weight = Tensor(rng.normal(size=(64, 64, 3, 3)) * 0.1)
    reset_conv_workspace()
    out_first = conv2d(x, weight, stride=1, padding=1)
    warm = conv_workspace_stats()
    assert warm["misses"] == 1, f"first call must allocate once, got {warm}"

    repeats = 10
    for _ in range(repeats):
        out_last = conv2d(x, weight, stride=1, padding=1)
    steady = conv_workspace_stats()
    extra_allocations = steady["misses"] - warm["misses"]
    assert extra_allocations == 0, (
        f"steady-state inference conv must not reallocate its pad buffer: "
        f"{extra_allocations} extra allocations over {repeats} calls"
    )
    assert steady["hits"] == warm["hits"] + repeats
    # reuse must not perturb the numerics: warm buffer == cold buffer bits
    np.testing.assert_array_equal(out_first.data, out_last.data)
    emit(
        "inference conv pad-workspace reuse",
        render_table(
            [
                {
                    "calls": repeats + 1,
                    "allocations": steady["misses"],
                    "workspace hits": steady["hits"],
                }
            ]
        ),
    )
