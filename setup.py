"""Setup shim so ``pip install -e .`` works with the legacy (non-PEP-660)
setuptools available in the offline environment."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PASNet (DAC 2023) reproduction: polynomial architecture search for "
        "2PC-based secure neural network deployment"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        # Single source of truth for CI and contributor tooling:
        #   pip install -e ".[dev]"
        "dev": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "ruff>=0.4",
        ],
    },
)
